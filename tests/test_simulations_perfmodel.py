"""Tests for the synthetic datasets and the performance models."""

import numpy as np
import pytest

from repro.analytics import BlobDetectorParams, RasterSpec, detect_blobs, rasterize
from repro.errors import ReproError
from repro.perfmodel import (
    SCENARIOS,
    TREND,
    model_write_breakdown,
    scenario,
    storage_to_compute_series,
)
from repro.perfmodel.scenarios import StorageComputeScenario
from repro.simulations import (
    SyntheticDataset,
    dataset_names,
    make_cfd,
    make_dataset,
    make_genasis,
    make_xgc1,
)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["cfd", "genasis", "xgc1"]

    def test_make_by_name(self):
        ds = make_dataset("xgc1", scale=0.05)
        assert ds.name == "xgc1"

    def test_unknown(self):
        with pytest.raises(ReproError):
            make_dataset("lhc")


class TestXGC1:
    def test_paper_scale_size(self):
        ds = make_xgc1(scale=1.0)
        # Paper: 20,694 vertices / 41,087 triangles (±few %).
        assert abs(ds.mesh.num_vertices - 20694) / 20694 < 0.05
        assert abs(ds.mesh.num_triangles - 41087) / 41087 < 0.05
        assert ds.variable == "dpot"

    def test_annulus_topology(self):
        ds = make_xgc1(scale=0.1)
        assert ds.mesh.euler_characteristic() == 0

    def test_blobs_detectable(self):
        ds = make_xgc1(scale=0.5, n_blobs=6, seed=3)
        spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))
        img = rasterize(ds.mesh, ds.field, spec)
        blobs = detect_blobs(img, BlobDetectorParams(10, 200, min_area=100))
        assert len(blobs) >= 4  # most seeded blobs are found

    def test_deterministic(self):
        a = make_xgc1(scale=0.1, seed=5)
        b = make_xgc1(scale=0.1, seed=5)
        assert np.array_equal(a.field, b.field)

    def test_seed_changes_field(self):
        a = make_xgc1(scale=0.1, seed=5)
        b = make_xgc1(scale=0.1, seed=6)
        assert not np.array_equal(a.field, b.field)

    def test_summary(self):
        s = make_xgc1(scale=0.05).summary()
        assert s["variable"] == "dpot"
        assert s["vertices"] > 0


class TestGenASiS:
    def test_paper_scale_size(self):
        ds = make_genasis(scale=1.0)
        # Paper: 130,050 triangles.
        assert abs(ds.mesh.num_triangles - 130_050) / 130_050 < 0.05

    def test_magnitude_non_negative(self):
        ds = make_genasis(scale=0.05)
        assert (ds.field >= 0).all()

    def test_shock_ring_bright(self):
        ds = make_genasis(scale=0.2)
        r = np.hypot(ds.mesh.vertices[:, 0], ds.mesh.vertices[:, 1])
        on_ring = np.abs(r - 0.55) < 0.05
        far = r > 0.85
        assert ds.field[on_ring].mean() > 3 * ds.field[far].mean()


class TestCFD:
    def test_paper_scale_size(self):
        ds = make_cfd(scale=1.0)
        # Paper: 12,577 triangles (body cutout makes counts less exact).
        assert abs(ds.mesh.num_triangles - 12_577) / 12_577 < 0.10

    def test_stagnation_pressure_at_leading_edge(self):
        ds = make_cfd(scale=0.5)
        v = ds.mesh.vertices
        # Leading edge: just upstream of the body center.
        near_nose = (
            (np.abs(v[:, 1] - 1.0) < 0.1)
            & (v[:, 0] < 1.2 * 0.3 * 4.0)
            & (v[:, 0] > 0.5)
        )
        far = v[:, 0] > 3.5
        assert ds.field[near_nose].max() > ds.field[far].mean() + 1000

    def test_suction_below_freestream(self):
        ds = make_cfd(scale=0.5, p_inf=100_000.0, dynamic_pressure=5_000.0)
        assert ds.field.min() < 100_000.0 - 2_000.0


class TestDatasetValidation:
    def test_field_length_checked(self):
        ds = make_xgc1(scale=0.05)
        with pytest.raises(ReproError):
            SyntheticDataset("x", "v", ds.mesh, np.zeros(3))


class TestTrend:
    def test_series_decreasing(self):
        """Fig. 6a: the storage-to-compute ratio falls monotonically."""
        series = storage_to_compute_series()
        values = [v for _, v in series]
        assert values == sorted(values, reverse=True)
        assert values[0] / values[-1] > 10  # order-of-magnitude decline

    def test_years_ordered(self):
        years = [m.year for m in TREND]
        assert years == sorted(years)
        assert years[0] == 2009


class TestScenarios:
    def test_paper_core_counts(self):
        assert SCENARIOS["high"].cores == 32
        assert SCENARIOS["medium"].cores == 128
        assert SCENARIOS["low"].cores == 512

    def test_storage_to_compute_ordering(self):
        assert (
            SCENARIOS["high"].storage_to_compute
            > SCENARIOS["medium"].storage_to_compute
            > SCENARIOS["low"].storage_to_compute
        )

    def test_unknown_scenario(self):
        with pytest.raises(ReproError):
            scenario("mystery")

    def test_validation(self):
        with pytest.raises(ReproError):
            StorageComputeScenario("bad", cores=0)


class TestWriteBreakdown:
    def make_report(self):
        from repro.core.encoder import EncodeReport
        from repro.core.notation import LevelScheme

        report = EncodeReport(
            var="dpot", scheme=LevelScheme(3), original_bytes=165_000
        )
        report.decimation_seconds = 0.08
        report.delta_seconds = 0.05
        report.compress_seconds = 0.02
        report.compressed_bytes = {"dpot/L2": 10_000, "dpot/delta0-1": 30_000}
        return report

    def test_io_fraction_grows_with_cores(self):
        """The Fig. 6b shape: low storage-to-compute ⇒ I/O-bound."""
        report = self.make_report()
        fracs = {
            name: model_write_breakdown(report, sc).fractions()["io"]
            for name, sc in SCENARIOS.items()
        }
        assert fracs["high"] < fracs["medium"] < fracs["low"]

    def test_compute_phases_scenario_invariant(self):
        report = self.make_report()
        a = model_write_breakdown(report, SCENARIOS["high"])
        b = model_write_breakdown(report, SCENARIOS["low"])
        assert a.decimation_seconds == b.decimation_seconds
        assert a.delta_compress_seconds == b.delta_compress_seconds

    def test_fractions_sum_to_one(self):
        report = self.make_report()
        fr = model_write_breakdown(report, SCENARIOS["medium"]).fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_breakdown_rejected(self):
        from repro.perfmodel.writecost import WriteBreakdown

        with pytest.raises(ReproError):
            WriteBreakdown("x", 0.0, 0.0, 0.0).fractions()
