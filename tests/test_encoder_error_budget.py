"""Tests for the encoder's total-error-budget guarantee."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.errors import CanopusError
from repro.io import BPDataset
from repro.mesh.generators import disk
from repro.storage import two_tier_titan


def roundtrip(tmp_path, budget, levels, mode="absolute", codec="zfp"):
    mesh = disk(400, seed=0)
    v = mesh.vertices
    field = np.sin(4 * v[:, 0]) * np.cos(3 * v[:, 1])
    h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
    enc = CanopusEncoder(
        h, codec=codec, codec_params={"mode": mode} if codec == "zfp" else {},
        total_error_budget=budget,
    )
    enc.encode("b", "f", mesh, field, LevelScheme(levels))
    dec = CanopusDecoder(BPDataset.open("b", h))
    out = dec.restore_to("f", 0)
    return field, out.field


class TestErrorBudget:
    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_absolute_budget_met(self, tmp_path, levels):
        budget = 1e-3
        field, restored = roundtrip(tmp_path, budget, levels)
        assert np.abs(restored - field).max() <= budget + 1e-14

    def test_relative_budget_met(self, tmp_path):
        budget = 1e-3  # fraction of the range
        field, restored = roundtrip(tmp_path, budget, 3, mode="relative")
        assert np.abs(restored - field).max() <= budget * np.ptp(field) + 1e-14

    def test_sz_codec_budget(self, tmp_path):
        budget = 1e-4
        field, restored = roundtrip(tmp_path, budget, 3, codec="sz")
        assert np.abs(restored - field).max() <= budget + 1e-14

    def test_budget_overrides_tolerance(self, tmp_path):
        mesh = disk(200, seed=1)
        field = mesh.vertices[:, 0]
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(
            h, codec="zfp",
            codec_params={"tolerance": 10.0},  # hopelessly loose
            total_error_budget=1e-5,
        )
        enc.encode("o", "f", mesh, field, LevelScheme(2))
        dec = CanopusDecoder(BPDataset.open("o", h))
        out = dec.restore_to("f", 0)
        assert np.abs(out.field - field).max() <= 1e-5 + 1e-14

    def test_invalid_budget(self, tmp_path):
        h = two_tier_titan(tmp_path, fast_capacity=1 << 20, slow_capacity=1 << 30)
        with pytest.raises(CanopusError):
            CanopusEncoder(h, total_error_budget=0.0)
        with pytest.raises(CanopusError):
            CanopusEncoder(h, total_error_budget=-1.0)

    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        budget_exp=st.integers(-6, -2),
        levels=st.integers(2, 4),
    )
    def test_budget_property(self, budget_exp, levels, tmp_path_factory):
        budget = 10.0**budget_exp
        field, restored = roundtrip(
            tmp_path_factory.mktemp("eb"), budget, levels
        )
        assert np.abs(restored - field).max() <= budget + 1e-14
