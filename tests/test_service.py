"""Tests for the multi-tenant HTTP read tier (repro.service).

One in-process :class:`CanopusService` (hosted on a dedicated thread by
:class:`ServiceThread`) serves an XGC1-style campaign; every assertion
goes over a real socket through the hand-rolled HTTP layer. Covers the
endpoint surface, bearer auth, the stable error-code → status contract,
resumable delta cursors (304 / 409), quota enforcement (429 +
Retry-After), and the per-tenant obs counters.
"""

import asyncio

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import (
    AuthError,
    ConflictError,
    QuotaError,
    RestorationError,
    VariableNotFoundError,
)
from repro.io import BPDataset
from repro.obs import get_registry
from repro.service import (
    CanopusService,
    ServiceClient,
    TenantConfig,
    TenantRegistry,
)
from repro.service.http import Request, Response
from repro.service.loadgen import ServiceThread
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

VARS = ["dpot", "apar"]
TOL = 1e-5


def _drive(coro):
    """Run one client coroutine against the threaded service."""
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def campaign_root(tmp_path_factory):
    src = make_xgc1(scale=0.2)
    rng = np.random.default_rng(7)
    fields = {
        "dpot": src.field,
        "apar": 0.5 * src.field + 0.1 * rng.standard_normal(src.field.shape),
    }
    root = tmp_path_factory.mktemp("svc")
    h = two_tier_titan(root, fast_capacity=64 << 20, slow_capacity=1 << 36)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=4,
    )
    ds = BPDataset.create("camp", h)
    for var, f in fields.items():
        enc.encode("camp", var, src.mesh, f, LevelScheme(3),
                   dataset=ds, close=False)
    ds.close()
    return root, fields


@pytest.fixture(scope="module")
def service(campaign_root):
    root, fields = campaign_root
    get_restored_cache().clear()
    get_geometry_cache().clear()
    h = two_tier_titan(root, fast_capacity=64 << 20, slow_capacity=1 << 36)
    tenants = [
        TenantConfig(name="alice", token="tok-alice"),
        TenantConfig(name="bob", token="tok-bob"),
        TenantConfig(
            name="cheap", token="tok-cheap",
            max_requests=2, window_seconds=3600.0,
        ),
    ]
    svc = CanopusService(h, tenants=tenants, workers=2, executor_workers=4)
    with ServiceThread(svc):
        yield svc, fields
    get_restored_cache().clear()
    get_geometry_cache().clear()


class TestHttpPrimitives:
    def test_response_roundtrip_via_parse(self):
        resp = Response.json({"a": 1}, status=200)
        wire = resp.render(keep_alive=True)
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"content-length:" in wire.lower()

    def test_request_query_parsing(self):
        req = Request(
            method="GET", path="/x", query={"level": "2"},
            headers={"authorization": "Bearer t"}, body=b"",
        )
        assert req.header("Authorization") == "Bearer t"
        assert req.query["level"] == "2"


class TestEndpoints:
    def test_healthz_unauthenticated(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port) as c:
                return await c.healthz()

        assert _drive(go()) is True

    def test_open_and_describe(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c.open_campaign("camp")

        info = _drive(go())
        assert info["name"] == "camp"
        assert sorted(info["variables"]) == sorted(VARS)
        assert info["variables"]["dpot"]["num_levels"] == 3
        assert len(info["fingerprint"]) == 32

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_restore_levels_bit_identical(self, service, level):
        """Wire payloads equal a direct in-process DecodeEngine restore."""
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c.restore("camp", "dpot", level=level)

        field, meta = _drive(go())
        direct = svc.datanode.session.open("camp").engine.restore(
            "dpot", level
        )
        assert meta["level"] == level
        assert field.dtype == direct.field.dtype
        assert np.array_equal(field, direct.field)

    def test_restore_tolerance_mode(self, service):
        svc, fields = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c.restore("camp", "apar", tolerance=1e-2)

        field, meta = _drive(go())
        assert field.shape == fields["apar"].shape
        # refine_until stops at the tolerance or at full accuracy,
        # whichever comes first.
        assert meta["rms"] <= 1e-2 or meta["level"] == 0

    def test_stats_pushdown_rows(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-bob") as c:
                return await c.stats("camp", "dpot")

        rows = _drive(go())
        assert rows, "expected per-chunk stat rows"
        for row in rows:
            assert row["key"].split("/")[0] == "dpot"
            assert {"vmin", "vmax", "vabs_max"} <= set(row["stats"])

    def test_raw_range_read(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-bob") as c:
                info = await c.open_campaign("camp")
                full, meta = await c.read_raw("camp", "dpot/L2")
                part, _ = await c.read_raw(
                    "camp", "dpot/L2", start=4, length=8
                )
                return full, part, meta

        full, part, meta = _drive(go())
        assert part == full[4:12]
        assert int(meta["total-bytes"]) == len(full)

    def test_metrics_endpoint_per_tenant(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.restore("camp", "dpot", level=2)
                return await c.metrics()

        payload = _drive(go())
        assert "alice" in payload["tenants"]
        assert payload["tenants"]["alice"]["total_requests"] > 0
        assert payload["tenants"]["alice"]["total_bytes"] > 0
        service_keys = list(payload["service"])
        assert any(k.startswith("service.requests") for k in service_keys)
        assert "camp" in payload["datanode"]["campaigns"]
        assert "hit_ratio" in payload["datanode"]["engine"]["camp"]


class TestErrorTaxonomy:
    def test_unknown_token_401(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port, token="nope") as c:
                await c.open_campaign("camp")

        with pytest.raises(AuthError):
            _drive(go())

    def test_missing_token_401(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port) as c:
                await c.open_campaign("camp")

        with pytest.raises(AuthError):
            _drive(go())

    def test_unknown_campaign_404(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.open_campaign("ghost")

        with pytest.raises(VariableNotFoundError):
            _drive(go())

    def test_unknown_variable_404(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.restore("camp", "ghost", level=0)

        with pytest.raises(VariableNotFoundError):
            _drive(go())

    def test_level_and_tolerance_400(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.restore("camp", "dpot", level=0, tolerance=1e-3)

        with pytest.raises(RestorationError):
            _drive(go())

    def test_bad_query_param_400(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                resp = await c._get(
                    "/v1/campaigns/camp/vars/dpot/restore?level=abc"
                )
                return resp

        resp = _drive(go())
        assert resp.status == 400
        assert resp.parsed_json()["code"] == "bad-request"

    def test_unknown_route_404(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c._get("/v1/nothing/here")

        resp = _drive(go())
        assert resp.status == 404
        assert resp.parsed_json()["code"] == "not-found"


class TestDeltaCursors:
    def test_if_none_match_304(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                _, meta = await c.restore("camp", "dpot", level=1)
                again = await c.restore(
                    "camp", "dpot", level=1, if_none_match=meta["cursor"]
                )
                return meta, again

        meta, (body, meta2) = _drive(go())
        assert body is None
        assert meta2["status"] == 304
        assert meta2["cursor"] == meta["cursor"]
        assert meta2["bytes"] == 0

    def test_cursor_resume_to_finer_level(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                _, coarse = await c.restore("camp", "apar", level=2)
                field, fine = await c.restore(
                    "camp", "apar", level=0, cursor=coarse["cursor"]
                )
                return coarse, fine, field

        coarse, fine, field = _drive(go())
        assert coarse["cursor"].endswith(".apar.L2." + coarse["cursor"].split(".")[-1])
        assert fine["level"] == 0
        direct = svc.datanode.session.open("camp").engine.restore("apar", 0)
        assert np.array_equal(field, direct.field)

    def test_stale_cursor_409(self, service):
        svc, _ = service
        bogus = "0" * 12 + ".dpot.L1.deadbeef"

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.restore("camp", "dpot", level=1, cursor=bogus)

        with pytest.raises(ConflictError):
            _drive(go())

    def test_cursor_carries_filter_state(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                _, plain = await c.restore("camp", "dpot", level=1)
                _, sig = await c.restore(
                    "camp", "dpot", level=1, min_significance=0.5
                )
                return plain, sig

        plain, sig = _drive(go())
        assert plain["cursor"] != sig["cursor"]


class TestQuotas:
    def test_rate_quota_429_with_retry_after(self, service):
        svc, _ = service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-cheap") as c:
                for _ in range(2):
                    await c.restore("camp", "dpot", level=2)
                await c.restore("camp", "dpot", level=2)

        with pytest.raises(QuotaError) as err:
            _drive(go())
        assert err.value.retry_after > 0

    def test_quota_rejection_counted(self, service):
        svc, _ = service
        usage = svc.tenants.usage("cheap")
        assert usage["rejected"] >= 1
        reg = get_registry()
        assert reg.value("service.quota_rejections", tenant="cheap") >= 1


class TestTenantRegistryUnit:
    def test_duplicate_token_rejected(self):
        from repro.errors import ConfigError

        reg = TenantRegistry([TenantConfig(name="a", token="t")])
        with pytest.raises(ConfigError):
            reg.add(TenantConfig(name="b", token="t"))

    def test_byte_quota_window(self):
        clock = {"now": 0.0}
        reg = TenantRegistry(
            [TenantConfig(name="a", token="t", max_bytes=100,
                          window_seconds=10.0)],
            metrics=get_registry(), clock=lambda: clock["now"],
        )
        t = reg.authenticate("Bearer t")
        reg.admit(t)
        reg.charge_bytes(t, 150)
        reg.release(t)
        with pytest.raises(QuotaError):
            reg.admit(t)
        clock["now"] = 11.0  # window rolls over -> admitted again
        reg.admit(t)
        reg.release(t)

    def test_inflight_quota(self):
        reg = TenantRegistry(
            [TenantConfig(name="a", token="t", max_inflight=1)]
        )
        t = reg.authenticate("Bearer t")
        reg.admit(t)
        with pytest.raises(QuotaError):
            reg.admit(t)
        reg.release(t)
        reg.admit(t)

    def test_tenants_file_roundtrip(self, tmp_path):
        import json

        path = tmp_path / "tenants.json"
        path.write_text(json.dumps([
            {"name": "a", "token": "ta", "max_requests": 5},
            {"name": "b", "token": "tb"},
        ]))
        reg = TenantRegistry.from_file(path)
        assert [t.name for t in reg.tenants()] == ["a", "b"]
        assert reg.authenticate("Bearer ta").max_requests == 5
