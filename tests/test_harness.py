"""Tests for the experiment harness and report formatting."""

import numpy as np
import pytest

from repro.harness import (
    format_fraction_bar,
    format_table,
    setup_experiment,
    write_baseline_dataset,
)
from repro.io import BPDataset
from repro.simulations import make_cfd
from repro.storage import two_tier_titan


class TestFormatTable:
    def test_basic(self):
        out = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.333333}], title="T"
        )
        assert "T" in out
        assert "a" in out and "b" in out
        assert "10" in out
        assert "0.3333" in out

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in out and "a" not in out.splitlines()[0]

    def test_large_and_small_floats(self):
        out = format_table([{"x": 123456.0, "y": 1e-9}])
        assert "1.235e+05" in out or "123456" in out
        assert "1e-09" in out

    def test_fraction_bar(self):
        bar = format_fraction_bar({"io": 0.5, "compute": 0.5}, width=10)
        assert bar.count("#") == 5
        assert "io=50%" in bar


class TestSetupExperiment:
    def test_full_setup(self, tmp_path):
        setup = setup_experiment("cfd", tmp_path, scale=0.1, num_levels=2)
        assert setup.dataset.name == "cfd"
        assert setup.scheme.num_levels == 2
        assert setup.report.total_compressed_bytes > 0
        dec = setup.decoder()
        base = dec.read_base("pressure")
        assert base.level == 1

    def test_baseline_written_to_slow_tier(self, tmp_path):
        setup = setup_experiment("cfd", tmp_path, scale=0.1, num_levels=2)
        ds = BPDataset.open(setup.baseline_name, setup.hierarchy)
        assert ds.inq("pressure/L0").tier == "lustre"

    def test_relative_tolerance_respected(self, tmp_path):
        setup = setup_experiment(
            "cfd", tmp_path, scale=0.1, num_levels=2, tolerance=1e-5
        )
        dec = setup.decoder()
        full = dec.restore_to("pressure", 0)
        rng = setup.dataset.field.max() - setup.dataset.field.min()
        err = np.abs(full.field - setup.dataset.field).max()
        # One delta stage + base stage, each bounded by rel tol × its range.
        assert err <= 4e-5 * rng


class TestWriteBaseline:
    def test_roundtrip(self, tmp_path):
        ds = make_cfd(scale=0.05)
        h = two_tier_titan(tmp_path, fast_capacity=1 << 20, slow_capacity=1 << 32)
        write_baseline_dataset("b", h, ds)
        from repro.analytics import baseline_full_read

        res = baseline_full_read(h, "b", "pressure")
        assert res.level == 0
