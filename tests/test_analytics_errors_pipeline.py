"""Tests for error metrics and the timed analysis pipeline."""

import numpy as np
import pytest

from repro.analytics import (
    baseline_full_read,
    cross_level_errors,
    field_errors,
    restore_full_accuracy,
    run_analysis_at_level,
)
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.errors import AnalyticsError, CanopusError
from repro.harness import setup_experiment, write_baseline_dataset
from repro.io import BPDataset
from repro.mesh import decimate
from repro.mesh.generators import disk
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan


class TestFieldErrors:
    def test_identical_fields(self):
        a = np.linspace(0, 1, 100)
        e = field_errors(a, a)
        assert e.rmse == 0.0
        assert e.max_error == 0.0
        assert e.psnr_db == float("inf")

    def test_known_offset(self):
        ref = np.zeros(50)
        test = np.full(50, 0.5)
        e = field_errors(test, ref)
        assert e.rmse == pytest.approx(0.5)
        assert e.max_error == pytest.approx(0.5)
        assert e.nrmse == 0.0  # zero-range reference

    def test_nrmse_normalization(self):
        ref = np.linspace(0, 10, 100)
        e = field_errors(ref + 1.0, ref)
        assert e.nrmse == pytest.approx(0.1)
        assert e.psnr_db == pytest.approx(20.0)

    def test_shape_mismatch(self):
        with pytest.raises(AnalyticsError):
            field_errors(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(AnalyticsError):
            field_errors(np.zeros(0), np.zeros(0))

    def test_as_dict(self):
        d = field_errors(np.ones(5), np.zeros(5)).as_dict()
        assert set(d) == {"rmse", "nrmse", "max_error", "psnr_db"}


class TestCrossLevelErrors:
    def test_decimated_field_close_on_smooth_data(self):
        mesh = disk(2000, seed=0)
        field = np.sin(mesh.vertices[:, 0] * 2)
        res = decimate(mesh, field, ratio=4)
        e = cross_level_errors(res.mesh, res.fields["data"], mesh, field)
        assert e.nrmse < 0.05

    def test_error_grows_with_decimation(self):
        mesh = disk(2000, seed=1)
        field = np.sin(mesh.vertices[:, 0] * 6) * np.cos(
            mesh.vertices[:, 1] * 6
        )
        errors = []
        current_mesh, current_field = mesh, field
        for _ in range(3):
            res = decimate(current_mesh, current_field, ratio=2)
            current_mesh, current_field = res.mesh, res.fields["data"]
            errors.append(
                cross_level_errors(current_mesh, current_field, mesh, field).rmse
            )
        assert errors[0] < errors[1] < errors[2]


class TestPipeline:
    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        return setup_experiment(
            "xgc1", tmp_path_factory.mktemp("pipe"), scale=0.15
        )

    def test_run_at_base_level(self, setup):
        dec = setup.decoder()
        res = run_analysis_at_level(dec, "dpot", setup.scheme.base_level)
        assert res.level == setup.scheme.base_level
        assert res.decimation_ratio == 4.0
        assert res.io_seconds > 0
        assert res.analysis_seconds >= 0
        assert res.total_seconds == pytest.approx(sum(res.phases().values()))

    def test_analysis_callback_invoked(self, setup):
        dec = setup.decoder()
        res = run_analysis_at_level(
            dec, "dpot", 1, analysis=lambda s: len(s.field)
        )
        assert res.output == len(
            setup.refactored.levels[1]
        )

    def test_full_restore(self, setup):
        dec = setup.decoder()
        res = restore_full_accuracy(dec, "dpot")
        assert res.level == 0
        assert res.decimation_ratio == 1.0
        assert res.restore_seconds > 0

    def test_invalid_level(self, setup):
        dec = setup.decoder()
        with pytest.raises(CanopusError):
            run_analysis_at_level(dec, "dpot", 99)

    def test_baseline_full_read(self, setup):
        res = baseline_full_read(
            setup.hierarchy, setup.baseline_name, "dpot",
            analysis=lambda s: float(s.field.max()),
        )
        assert res.level == 0
        assert res.restore_seconds == 0.0
        assert res.output == pytest.approx(float(setup.dataset.field.max()))

    def test_baseline_missing_mesh(self, tmp_path):
        h = two_tier_titan(tmp_path, fast_capacity=1 << 20, slow_capacity=1 << 32)
        ds = BPDataset.create("nomesh", h)
        from repro.compress import get_codec

        ds.write("v/L0", get_codec("raw").encode(np.ones(5)), kind="base", level=0)
        ds.close()
        with pytest.raises(AnalyticsError):
            baseline_full_read(h, "nomesh", "v")

    def test_canopus_beats_baseline_at_reduced_accuracy(self, setup):
        """The headline claim: reduced-accuracy analytics is much faster."""
        dec = setup.decoder()
        canopus = run_analysis_at_level(dec, "dpot", setup.scheme.base_level)
        baseline = baseline_full_read(
            setup.hierarchy, setup.baseline_name, "dpot"
        )
        assert canopus.io_seconds < baseline.io_seconds / 2

    def test_canopus_full_restore_cheaper_io_than_baseline(self, tmp_path):
        """Fig. 9b: restoring L0 from base+deltas beats the raw L0 read.

        Holds in the bandwidth-dominated regime of the paper's data
        volumes (dpot is a multi-plane 3-D variable); tiny single-plane
        payloads are latency-bound and do not show it, so this test uses
        a plane stack.
        """
        setup = setup_experiment(
            "xgc1", tmp_path, scale=0.3, planes=64, fast_capacity=64 << 20
        )
        dec = setup.decoder()
        full = restore_full_accuracy(
            dec, "dpot", analysis=lambda s: s.field.shape
        )
        baseline = baseline_full_read(
            setup.hierarchy, setup.baseline_name, "dpot"
        )
        assert full.output == (64, setup.dataset.mesh.num_vertices)
        assert full.io_seconds < baseline.io_seconds
