"""Tests for the round-based batched collapse kernel and lineage replay."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DecimationError
from repro.mesh import (
    KERNELS,
    CollapseLineage,
    TriangleMesh,
    decimate,
    decimate_batched,
)
from repro.mesh.generators import annulus, disk, structured_rectangle
from repro.obs import trace_session

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBatchedKernel:
    def test_registered_kernel_names(self):
        assert KERNELS == ("serial", "batched")

    def test_reaches_target_ratio(self):
        mesh = structured_rectangle(30, 30, jitter=0.2, seed=7)
        result = decimate_batched(mesh, None, ratio=4.0)
        assert result.achieved_ratio == pytest.approx(4.0, rel=0.05)
        assert not result.exhausted

    def test_dispatch_through_decimate(self):
        mesh = structured_rectangle(15, 15)
        direct = decimate_batched(mesh, None, ratio=2.0)
        routed = decimate(mesh, None, ratio=2.0, method="batched")
        assert np.array_equal(direct.mesh.vertices, routed.mesh.vertices)
        assert np.array_equal(direct.mesh.triangles, routed.mesh.triangles)

    def test_unknown_method_rejected(self):
        mesh = structured_rectangle(5, 5)
        with pytest.raises(DecimationError, match="unknown decimation method"):
            decimate(mesh, None, ratio=2.0, method="bogus")

    def test_output_mesh_is_valid(self):
        mesh = disk(500, seed=3, jitter=0.3)
        result = decimate_batched(mesh, None, ratio=4.0)
        # Full validation: consistent indices, no degenerate/duplicate
        # triangles, positive areas after canonical orientation.
        TriangleMesh(result.mesh.vertices, result.mesh.triangles)

    def test_fields_follow_the_mesh(self):
        mesh = structured_rectangle(20, 20, jitter=0.1, seed=1)
        field = np.sin(mesh.vertices[:, 0] * 5) * np.cos(mesh.vertices[:, 1])
        result = decimate_batched(mesh, {"f": field}, ratio=2.0)
        assert set(result.fields) == {"f"}
        assert len(result.fields["f"]) == result.mesh.num_vertices
        # Midpoint averaging keeps values inside the fine field's range.
        assert result.fields["f"].min() >= field.min() - 1e-12
        assert result.fields["f"].max() <= field.max() + 1e-12

    def test_boundary_disk_stays_disk(self):
        """Collapses touching boundary edges must not tear the hull open."""
        mesh = disk(400, seed=1)
        assert mesh.euler_characteristic() == 1
        result = decimate_batched(mesh, None, ratio=4.0)
        out = result.mesh
        TriangleMesh(out.vertices, out.triangles)
        assert out.euler_characteristic() == 1
        assert len(out.boundary_vertices) >= 3
        # The coarse hull stays inside the fine bounding box (midpoint
        # placement never extrapolates).
        lo, hi = mesh.bounding_box()
        clo, chi = out.bounding_box()
        assert np.all(clo >= lo - 1e-12) and np.all(chi <= hi + 1e-12)

    def test_link_condition_retries_eventually_collapse(self):
        """Blocked edges are penalized and retried, not dropped: the
        kernel still reaches the target ratio after skipping."""
        mesh = structured_rectangle(20, 20)
        result = decimate_batched(mesh, None, ratio=8.0)
        assert result.queue_stats["link_skips"] > 0
        assert not result.exhausted
        assert result.achieved_ratio == pytest.approx(8.0, rel=0.1)

    def test_rounds_are_few(self):
        """The whole point of batching: rounds ≪ collapses."""
        mesh = structured_rectangle(40, 40, jitter=0.2, seed=2)
        result = decimate_batched(mesh, None, ratio=2.0)
        assert result.queue_stats["rounds"] <= 15
        assert result.collapses > 30 * result.queue_stats["rounds"] / 15

    def test_annulus_decimates_validly(self):
        mesh = annulus(10, 36)
        result = decimate_batched(mesh, None, ratio=4.0)
        TriangleMesh(result.mesh.vertices, result.mesh.triangles)
        assert result.achieved_ratio == pytest.approx(4.0, rel=0.1)

    def test_bad_ratio_rejected(self):
        with pytest.raises(DecimationError):
            decimate_batched(structured_rectangle(5, 5), None, ratio=0.5)

    def test_field_length_mismatch_rejected(self):
        mesh = structured_rectangle(5, 5)
        with pytest.raises(DecimationError, match="values for"):
            decimate_batched(mesh, {"f": np.zeros(7)}, ratio=2.0)

    def test_deterministic_across_runs(self):
        """Hash-based ranks are seedless: two runs are bit-identical."""
        mesh = disk(600, seed=9, jitter=0.4)
        a = decimate_batched(mesh, None, ratio=4.0)
        b = decimate_batched(mesh, None, ratio=4.0)
        assert np.array_equal(a.mesh.vertices, b.mesh.vertices)
        assert np.array_equal(a.mesh.triangles, b.mesh.triangles)


class TestLineageReplay:
    @settings(**_SETTINGS)
    @given(
        nx=st.integers(8, 20),
        ny=st.integers(8, 20),
        seed=st.integers(0, 1000),
        method=st.sampled_from(KERNELS),
    )
    def test_replay_bit_identical_to_direct(self, nx, ny, seed, method):
        """Replaying the recorded collapse sequence on a field produces
        exactly the bytes direct decimation-with-fields produces."""
        mesh = structured_rectangle(nx, ny, jitter=0.3, seed=seed)
        rng = np.random.default_rng(seed)
        field = rng.normal(size=mesh.num_vertices)

        direct = decimate(
            mesh, {"f": field}, ratio=2.0, method=method,
            record_lineage=True,
        )
        replayed = direct.lineage.replay(field)
        assert replayed.dtype == np.float64
        assert np.array_equal(replayed, direct.fields["f"])

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 1000), method=st.sampled_from(KERNELS))
    def test_replay_stacked_planes(self, seed, method):
        mesh = structured_rectangle(12, 12, jitter=0.2, seed=seed)
        rng = np.random.default_rng(seed)
        planes = rng.normal(size=(3, mesh.num_vertices))

        geom = decimate(mesh, None, ratio=2.0, method=method,
                        record_lineage=True)
        stacked = geom.lineage.replay(planes)
        assert stacked.shape == (3, geom.mesh.num_vertices)
        for p in range(3):
            assert np.array_equal(stacked[p], geom.lineage.replay(planes[p]))

    def test_geometry_free_lineage_matches_with_fields(self):
        """decimate(fields=None) records the same sequence as
        decimate(fields=...) for the length priority."""
        mesh = disk(300, seed=5)
        field = mesh.vertices[:, 0] ** 2
        for method in KERNELS:
            geom = decimate(mesh, None, ratio=2.0, method=method,
                            record_lineage=True)
            with_f = decimate(mesh, {"f": field}, ratio=2.0, method=method)
            assert np.array_equal(
                geom.lineage.replay(field), with_f.fields["f"]
            )

    def test_lineage_round_trips_through_arrays(self):
        mesh = structured_rectangle(10, 10, jitter=0.2, seed=4)
        result = decimate_batched(mesh, None, ratio=2.0, record_lineage=True)
        arrays = result.lineage.to_arrays(prefix="x_")
        clone = CollapseLineage.from_arrays(arrays, prefix="x_")
        field = np.arange(mesh.num_vertices, dtype=np.float64)
        assert np.array_equal(clone.replay(field), result.lineage.replay(field))

    def test_lineage_absent_without_flag(self):
        result = decimate_batched(structured_rectangle(8, 8), None, ratio=2.0)
        assert result.lineage is None


class TestQueueObservability:
    def test_serial_queue_counters_on_tracer(self):
        with trace_session(None) as tracer:
            decimate(structured_rectangle(15, 15), None, ratio=2.0)
        snap = tracer.metrics.snapshot()
        assert snap["decimate.queue.pushes"] > 0
        assert snap["decimate.queue.stale_pops"] >= 0
        assert "decimate.queue.heap_size" in snap

    def test_batched_round_counters_on_tracer(self):
        with trace_session(None) as tracer:
            decimate(
                structured_rectangle(15, 15), None, ratio=2.0,
                method="batched",
            )
        snap = tracer.metrics.snapshot()
        assert snap["decimate.batched.rounds"] > 0
        assert snap["decimate.batched.collapses"] > 0

    def test_no_tracer_no_error(self):
        # The metrics hook must be a no-op outside a trace session.
        decimate(structured_rectangle(8, 8), None, ratio=2.0)
        decimate(structured_rectangle(8, 8), None, ratio=2.0, method="batched")
