"""Tests for isocontour extraction and the tier-management policy."""

import numpy as np
import pytest

from repro.analytics.contour import contour_distance, extract_contour
from repro.errors import AnalyticsError, StorageError
from repro.mesh import decimate
from repro.mesh.generators import disk, structured_rectangle
from repro.storage import SimClock, StorageHierarchy, StorageTier
from repro.storage.policy import TierManager


class TestExtractContour:
    def test_vertical_line_contour(self):
        mesh = structured_rectangle(20, 20)
        field = mesh.vertices[:, 0]
        contour = extract_contour(mesh, field, 0.5)
        assert contour.num_segments > 0
        pts = contour.points()
        assert np.allclose(pts[:, 0], 0.5, atol=1e-9)
        # A straight cut across the unit square has total length ~1.
        assert contour.total_length() == pytest.approx(1.0, rel=1e-6)

    def test_circle_contour_length(self):
        mesh = disk(4000, radius=1.0)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        contour = extract_contour(mesh, r, 0.5)
        # Circle of radius 0.5 → circumference π.
        assert contour.total_length() == pytest.approx(np.pi, rel=0.02)

    def test_no_crossing(self):
        mesh = structured_rectangle(5, 5)
        contour = extract_contour(mesh, mesh.vertices[:, 0], 5.0)
        assert contour.num_segments == 0
        assert contour.total_length() == 0.0

    def test_isovalue_exactly_at_vertex(self):
        mesh = structured_rectangle(6, 6)
        field = mesh.vertices[:, 0]
        # 0.4 is an exact grid value; the epsilon nudge must keep every
        # crossed triangle contributing exactly 2 crossing points.
        contour = extract_contour(mesh, field, 0.4)
        assert contour.num_segments > 0
        assert np.isfinite(contour.segments).all()

    def test_field_length_mismatch(self):
        mesh = structured_rectangle(4, 4)
        with pytest.raises(AnalyticsError):
            extract_contour(mesh, np.zeros(3), 0.0)

    def test_segments_lie_on_mesh_edges_interpolation(self):
        mesh = disk(500, seed=1)
        field = mesh.vertices[:, 1]
        contour = extract_contour(mesh, field, 0.1)
        assert np.allclose(contour.points()[:, 1], 0.1, atol=1e-9)


class TestContourDistance:
    def test_identical_zero(self):
        mesh = disk(800, seed=0)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        c = extract_contour(mesh, r, 0.5)
        assert contour_distance(c, c) == 0.0

    def test_shifted_isovalue_distance(self):
        mesh = disk(3000, seed=0)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        c1 = extract_contour(mesh, r, 0.5)
        c2 = extract_contour(mesh, r, 0.6)
        # Concentric circles differ by ~0.1 in radius.
        assert contour_distance(c1, c2) == pytest.approx(0.1, abs=0.02)

    def test_empty_conventions(self):
        mesh = disk(300, seed=0)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        full = extract_contour(mesh, r, 0.5)
        empty = extract_contour(mesh, r, 99.0)
        assert contour_distance(empty, empty) == 0.0
        assert contour_distance(full, empty) == float("inf")

    def test_decimation_degrades_contours_gracefully(self):
        """Cross-level contour drift shrinks as accuracy increases."""
        mesh = disk(3000, seed=2)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        field = np.tanh((0.5 - r) * 8)
        reference = extract_contour(mesh, field, 0.0)
        drifts = []
        for ratio in (8, 2):
            res = decimate(mesh, field, ratio=ratio)
            c = extract_contour(res.mesh, res.fields["data"], 0.0)
            drifts.append(contour_distance(c, reference))
        assert drifts[1] < drifts[0]  # finer level → closer contour
        assert drifts[1] < 0.05


@pytest.fixture
def managed(tmp_path):
    clock = SimClock()
    h = StorageHierarchy(
        [
            StorageTier("fast", "dram_tmpfs", 1000, tmp_path / "f", clock),
            StorageTier("mid", "ssd", 5000, tmp_path / "m", clock),
            StorageTier("slow", "lustre", 10**6, tmp_path / "s", clock),
        ]
    )
    return h, TierManager(h, high_water=0.8, low_water=0.5)


class TestTierManager:
    def test_watermark_validation(self, managed):
        h, _ = managed
        with pytest.raises(StorageError):
            TierManager(h, high_water=0.5, low_water=0.8)

    def test_rebalance_noop_below_watermark(self, managed):
        h, mgr = managed
        h.place("a", b"x" * 100)
        assert mgr.rebalance() == []

    def test_rebalance_demotes_cold_first(self, managed):
        h, mgr = managed
        h.place("cold", b"c" * 450)
        h.place("hot", b"h" * 450)  # fast tier now at 90% > high water
        mgr.read("hot")  # hot is warmer than cold
        moves = mgr.rebalance()
        assert ("cold", "fast", "mid") in moves
        assert h.locate("cold").name == "mid"
        assert h.locate("hot").name == "fast"
        assert h.tier("fast").used_bytes <= 0.5 * 1000

    def test_rebalance_cascades_to_fit(self, managed):
        h, mgr = managed
        for i in range(3):
            h.place(f"f{i}", b"x" * 300)  # 900/1000 on fast
        moves = mgr.rebalance()
        assert moves
        assert h.tier("fast").used_bytes <= 500

    def test_slowest_tier_never_rebalanced(self, managed):
        h, mgr = managed
        h.place("deep", b"x" * 900_000, preferred_index=2)
        assert mgr.rebalance() == []

    def test_promote_hot(self, managed):
        h, mgr = managed
        h.place("base", b"b" * 200, preferred_index=2)  # lands on slow
        for _ in range(3):
            mgr.read("base")
        moves = mgr.promote_hot()
        assert ("base", "slow", "fast") in moves
        assert h.locate("base").name == "fast"

    def test_promotion_respects_watermark(self, managed):
        h, mgr = managed
        h.place("filler", b"f" * 700)  # fast at 70%
        h.place("big", b"b" * 400, preferred_index=2)
        for _ in range(5):
            mgr.read("big")
        moves = mgr.promote_hot()
        # 700 + 400 > 80% of 1000 → promotion refused.
        assert moves == []
        assert h.locate("big").name == "slow"

    def test_cold_files_not_promoted(self, managed):
        h, mgr = managed
        h.place("rare", b"r" * 100, preferred_index=2)
        mgr.read("rare")  # only once, below promote_after_reads
        assert mgr.promote_hot() == []

    def test_tracked_read_returns_data(self, managed):
        h, mgr = managed
        h.place("a", b"payload")
        assert mgr.read("a") == b"payload"
