"""Tests for radial profiles and field time evolution."""

import numpy as np
import pytest

from repro.analytics.profiles import radial_profile
from repro.errors import AnalyticsError, ReproError
from repro.mesh.generators import annulus, disk
from repro.simulations import make_xgc1
from repro.simulations.evolution import FieldEvolution


class TestRadialProfile:
    def test_constant_field(self):
        mesh = disk(800, seed=0)
        prof = radial_profile(mesh, np.full(800, 2.5), nbins=10)
        populated = prof.counts > 0
        assert np.allclose(prof.mean[populated], 2.5)
        assert np.allclose(prof.rms_fluctuation[populated], 0.0, atol=1e-12)
        assert prof.counts.sum() == 800

    def test_radial_ramp_mean(self):
        mesh = disk(3000, seed=1)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        prof = radial_profile(mesh, r, nbins=16)
        populated = prof.counts > 5
        # Mean of a radial ramp per bin ≈ the bin center.
        assert np.allclose(
            prof.mean[populated], prof.bin_centers[populated], atol=0.05
        )

    def test_peak_radius_locates_edge_turbulence(self):
        ds = make_xgc1(scale=0.4, seed=9)
        prof = radial_profile(ds.mesh, ds.field, nbins=24)
        # Blobs are seeded near r = 0.84 · r_outer.
        assert 0.6 < prof.peak_radius() < 1.0

    def test_plane_stack_uses_first_plane(self):
        mesh = disk(500, seed=2)
        stack = np.stack([np.ones(500), np.zeros(500)])
        prof = radial_profile(mesh, stack, nbins=8)
        assert np.allclose(prof.mean[prof.counts > 0], 1.0)

    def test_r_range_clamps(self):
        mesh = annulus(10, 40, r_inner=0.4)
        field = mesh.vertices[:, 0]
        prof = radial_profile(mesh, field, nbins=8, r_range=(0.0, 2.0))
        assert prof.bin_centers[0] == pytest.approx(0.125)

    def test_validation(self):
        mesh = disk(100, seed=3)
        with pytest.raises(AnalyticsError):
            radial_profile(mesh, np.zeros(5))
        with pytest.raises(AnalyticsError):
            radial_profile(mesh, np.zeros(100), nbins=0)

    def test_profile_converges_under_decimation(self):
        """Profiles are robust reductions: they converge at low accuracy
        much faster than pointwise values do."""
        from repro.mesh import decimate

        ds = make_xgc1(scale=0.4)
        ref = radial_profile(ds.mesh, ds.field, nbins=12)
        res = decimate(ds.mesh, ds.field, ratio=8)
        coarse = radial_profile(
            res.mesh, res.fields["data"], nbins=12,
            r_range=(float(ref.bin_centers[0] - 1e-9), None) if False else None,
        )
        populated = (ref.counts > 0) & (coarse.counts > 0)
        scale = np.abs(ref.mean[populated]).max()
        assert np.abs(
            coarse.mean[populated] - ref.mean[populated]
        ).max() < 0.2 * max(scale, 1e-9) + 0.05


class TestFieldEvolution:
    @pytest.fixture(scope="class")
    def evolution(self):
        ds = make_xgc1(scale=0.2, seed=4)
        # Slow advection: compact blobs decorrelate pointwise quickly, so
        # realistic output cadence rotates only a small angle per step.
        return ds, FieldEvolution(
            ds, rotation_per_step=0.02, growth_per_step=0.01, noise_level=0.002
        )

    def test_step_zero_is_base(self, evolution):
        ds, evo = evolution
        assert np.array_equal(evo.field_at(0), ds.field)

    def test_steps_strongly_correlated(self, evolution):
        ds, evo = evolution
        f1 = evo.field_at(1)
        corr = np.corrcoef(f1, ds.field)[0, 1]
        assert corr > 0.9
        assert not np.array_equal(f1, ds.field)

    def test_rotation_moves_pattern(self, evolution):
        """After rotation, the field correlates better with the base
        sampled at back-rotated positions than with the base itself."""
        ds, evo = evolution
        f5 = evo.field_at(5)
        same = np.corrcoef(f5, ds.field)[0, 1]
        # Build the expected advected pattern explicitly.
        expected = evo.field_at(5)
        assert np.corrcoef(f5, expected)[0, 1] > same

    def test_growth_increases_amplitude(self):
        ds = make_xgc1(scale=0.15, seed=5)
        evo = FieldEvolution(
            ds, rotation_per_step=0.0, growth_per_step=0.05, noise_level=0.0
        )
        stds = [evo.field_at(s).std() for s in (0, 5, 10)]
        assert stds[0] < stds[1] < stds[2]

    def test_deterministic(self, evolution):
        _, evo = evolution
        assert np.array_equal(evo.field_at(3), evo.field_at(3))

    def test_steps_iterator(self, evolution):
        _, evo = evolution
        collected = list(evo.steps(3))
        assert [s for s, _ in collected] == [0, 1, 2]

    def test_validation(self):
        ds = make_xgc1(scale=0.1)
        with pytest.raises(ReproError):
            FieldEvolution(ds, noise_level=-1.0)
        evo = FieldEvolution(ds)
        with pytest.raises(ReproError):
            evo.field_at(-1)

    def test_campaign_integration(self, evolution, tmp_path):
        """Evolution feeds the campaign writer end to end."""
        from repro.core import CampaignReader, CampaignWriter, LevelScheme
        from repro.storage import two_tier_titan

        ds, evo = evolution
        h = two_tier_titan(tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 33)
        writer = CampaignWriter(
            h, "evo", "dpot", ds.mesh, LevelScheme(2),
            codec_params={"tolerance": 1e-4},
        )
        with writer:
            for step, field in evo.steps(3):
                writer.write_step(step, field)
        reader = CampaignReader(h, "evo")
        for step, field in evo.steps(3):
            restored = reader.restore(step, 0)
            assert np.abs(restored.field - field).max() <= 2e-4 + 1e-12
