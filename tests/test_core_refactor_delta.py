"""Tests for mapping, delta calculation (Alg. 2), and refactoring."""

import numpy as np
import pytest

from repro.core import (
    LevelMapping,
    LevelScheme,
    apply_delta,
    build_mapping,
    compute_delta,
    refactor,
)
from repro.errors import RefactoringError, RestorationError
from repro.mesh import decimate
from repro.mesh.generators import annulus, disk


@pytest.fixture(scope="module")
def level_pair():
    mesh = disk(800, seed=0)
    field = np.sin(2 * mesh.vertices[:, 0]) + mesh.vertices[:, 1] ** 2
    res = decimate(mesh, field, ratio=2)
    return mesh, field, res.mesh, res.fields["data"]


class TestLevelMapping:
    def test_build_mean(self, level_pair):
        fine, _, coarse, _ = level_pair
        m = build_mapping(fine, coarse)
        assert m.n_fine == fine.num_vertices
        assert m.weights is None
        assert m.tri_vertices.max() < coarse.num_vertices

    def test_build_barycentric(self, level_pair):
        fine, _, coarse, _ = level_pair
        m = build_mapping(fine, coarse, estimator="barycentric")
        assert m.weights is not None
        assert np.allclose(m.weights.sum(axis=1), 1.0)

    def test_unknown_estimator(self, level_pair):
        fine, _, coarse, _ = level_pair
        with pytest.raises(RefactoringError):
            build_mapping(fine, coarse, estimator="quadratic")

    def test_estimate_mean(self):
        m = LevelMapping(tri_vertices=np.array([[0, 1, 2]]))
        coarse = np.array([3.0, 6.0, 9.0])
        assert m.estimate(coarse)[0] == pytest.approx(6.0)

    def test_estimate_weighted(self):
        m = LevelMapping(
            tri_vertices=np.array([[0, 1, 2]]),
            weights=np.array([[1.0, 0.0, 0.0]]),
        )
        assert m.estimate(np.array([3.0, 6.0, 9.0]))[0] == pytest.approx(3.0)

    def test_serialization_roundtrip_mean(self, level_pair):
        fine, _, coarse, _ = level_pair
        m = build_mapping(fine, coarse)
        m2 = LevelMapping.from_bytes(m.to_bytes())
        assert np.array_equal(m2.tri_vertices, m.tri_vertices)
        assert m2.weights is None

    def test_serialization_roundtrip_weights(self, level_pair):
        fine, _, coarse, _ = level_pair
        m = build_mapping(fine, coarse, estimator="barycentric")
        m2 = LevelMapping.from_bytes(m.to_bytes())
        assert np.allclose(m2.weights, m.weights)

    def test_bad_blob(self):
        with pytest.raises(RefactoringError):
            LevelMapping.from_bytes(b"garbage")

    def test_shape_validation(self):
        with pytest.raises(RefactoringError):
            LevelMapping(tri_vertices=np.zeros((3, 2)))
        with pytest.raises(RefactoringError):
            LevelMapping(
                tri_vertices=np.zeros((3, 3), dtype=int),
                weights=np.zeros((2, 3)),
            )


class TestDelta:
    def test_delta_restore_exact_inverse(self, level_pair):
        """With no compression, restore is bit-exact (paper Alg. 2 vs 3)."""
        fine, ff, coarse, cf = level_pair
        for estimator in ("mean", "barycentric"):
            m = build_mapping(fine, coarse, estimator=estimator)
            delta = compute_delta(ff, cf, m)
            restored = apply_delta(cf, delta, m)
            assert np.allclose(restored, ff, atol=1e-12), estimator

    def test_delta_smaller_than_field(self, level_pair):
        """The delta is near zero: |delta| << |L| on smooth data."""
        fine, ff, coarse, cf = level_pair
        m = build_mapping(fine, coarse)
        delta = compute_delta(ff, cf, m)
        assert np.abs(delta).mean() < 0.3 * np.abs(ff).mean()

    def test_barycentric_delta_smaller_on_linear_field(self, level_pair):
        """Barycentric Estimate reproduces linear fields exactly → zero delta."""
        fine, _, coarse, _ = level_pair
        ff = 2.0 * fine.vertices[:, 0] - fine.vertices[:, 1]
        cf = 2.0 * coarse.vertices[:, 0] - coarse.vertices[:, 1]
        m = build_mapping(fine, coarse, estimator="barycentric")
        delta = compute_delta(ff, cf, m)
        assert np.abs(delta).max() < 1e-9

    def test_length_mismatch(self, level_pair):
        fine, ff, coarse, cf = level_pair
        m = build_mapping(fine, coarse)
        with pytest.raises(RefactoringError):
            compute_delta(ff[:-1], cf, m)
        with pytest.raises(RestorationError):
            apply_delta(cf, np.zeros(3), m)

    def test_coarse_too_short(self, level_pair):
        fine, ff, coarse, cf = level_pair
        m = build_mapping(fine, coarse)
        with pytest.raises(RefactoringError):
            compute_delta(ff, cf[:2], m)
        with pytest.raises(RestorationError):
            apply_delta(cf[:2], np.zeros(m.n_fine), m)


class TestRefactor:
    def test_three_level_refactor(self):
        mesh = annulus(40, 100)
        field = np.cos(mesh.vertices[:, 0] * 4)
        result = refactor(mesh, field, LevelScheme(3))
        assert len(result.meshes) == 3
        assert len(result.levels) == 3
        assert len(result.deltas) == 2
        assert len(result.mappings) == 2
        assert result.meshes[1].num_vertices == mesh.num_vertices // 2
        assert result.meshes[2].num_vertices == mesh.num_vertices // 4
        assert result.base_mesh is result.meshes[2]

    def test_deltas_smoother_than_levels(self):
        """The Fig. 4 observation that motivates storing deltas."""
        from repro.compress.stats import smoothness

        mesh = disk(2000, seed=3)
        v = mesh.vertices
        field = np.sin(3 * v[:, 0]) * np.cos(3 * v[:, 1])
        result = refactor(mesh, field, LevelScheme(3))
        for lvl in (0, 1):
            s_level = smoothness(result.levels[lvl])
            s_delta = smoothness(result.deltas[lvl])
            assert s_delta.std < s_level.std
            assert s_delta.value_range < s_level.value_range

    def test_exact_reconstruction_chain(self):
        """base + all deltas == L0 exactly (no compression involved)."""
        mesh = disk(1000, seed=4)
        field = np.tanh(mesh.vertices[:, 0] * 2) + mesh.vertices[:, 1]
        result = refactor(mesh, field, LevelScheme(3))
        state = result.base_field
        for lvl in (1, 0):
            state = apply_delta(state, result.deltas[lvl], result.mappings[lvl])
        assert np.allclose(state, field, atol=1e-12)

    def test_timings_recorded(self):
        mesh = disk(500, seed=5)
        result = refactor(mesh, mesh.vertices[:, 0], LevelScheme(2))
        assert result.decimation_seconds > 0
        assert result.delta_seconds > 0

    def test_single_level_no_deltas(self):
        mesh = disk(300, seed=6)
        result = refactor(mesh, mesh.vertices[:, 0], LevelScheme(1))
        assert result.deltas == []
        assert result.base_field is result.levels[0]

    def test_data_length_mismatch(self):
        mesh = disk(300, seed=6)
        with pytest.raises(RefactoringError):
            refactor(mesh, np.zeros(5), LevelScheme(2))

    def test_achieved_ratios(self):
        mesh = disk(1024, seed=7)
        result = refactor(mesh, mesh.vertices[:, 0], LevelScheme(3))
        assert result.achieved_ratios[0] == 1.0
        assert result.achieved_ratios[1] == pytest.approx(2.0, rel=0.01)
        assert result.achieved_ratios[2] == pytest.approx(4.0, rel=0.01)
