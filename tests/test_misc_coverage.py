"""Coverage for smaller behaviors across modules.

Migration-aware dataset reads, staging via XML config, report formatting
edges, decoder caches, and the compression-result arithmetic.
"""

import numpy as np
import pytest

from repro.compress import CompressionResult
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.errors import StorageError
from repro.harness.report import format_fraction_bar, format_table
from repro.io import BPDataset, parse_config
from repro.mesh.generators import disk
from repro.storage import two_tier_titan


class TestMigrationAwareReads:
    def test_read_follows_migrated_subfile(self, tmp_path):
        h = two_tier_titan(tmp_path, fast_capacity=1 << 20, slow_capacity=1 << 30)
        with BPDataset.create("m", h) as ds:
            ds.write("a", b"payload")
        # The subfile landed on tmpfs; demote it manually.
        h.migrate("m.tmpfs.bp", "lustre")
        rd = BPDataset.open("m", h)
        assert rd.inq("a").tier == "tmpfs"  # catalog is stale by design
        assert rd.read("a") == b"payload"  # read re-locates

    def test_read_fails_when_subfile_gone_everywhere(self, tmp_path):
        h = two_tier_titan(tmp_path, fast_capacity=1 << 20, slow_capacity=1 << 30)
        with BPDataset.create("m", h) as ds:
            ds.write("a", b"payload")
        h.tier("tmpfs").delete("m.tmpfs.bp")
        rd = BPDataset.open("m", h)
        with pytest.raises(StorageError):
            rd.read("a")


class TestXMLStagingTransport:
    def test_staging_method_parsed(self, tmp_path):
        xml = f"""
        <canopus-config>
          <storage root="{tmp_path}">
            <tier name="fast" device="dram_tmpfs" capacity="1MiB"/>
            <tier name="slow" device="lustre" capacity="1GiB"/>
          </storage>
          <transport tier="slow" method="STAGING"/>
        </canopus-config>
        """
        cfg = parse_config(xml)
        assert cfg.transport_for("slow").method == "STAGING"


class TestReportFormattingEdges:
    def test_missing_column_values(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out

    def test_bool_and_string_cells(self):
        out = format_table([{"x": True, "y": "hi"}])
        assert "True" in out and "hi" in out

    def test_fraction_bar_rounding(self):
        bar = format_fraction_bar({"a": 1.0}, width=8)
        assert bar.count("#") == 8

    def test_fraction_bar_many_segments(self):
        fracs = {f"s{i}": 1 / 6 for i in range(6)}
        bar = format_fraction_bar(fracs, width=12)
        assert "s5=17%" in bar


class TestDecoderCaches:
    def test_geometry_cached_across_restores(self, tmp_path):
        mesh = disk(300, seed=0)
        field = mesh.vertices[:, 0]
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4})
        enc.encode("c", "f", mesh, field, LevelScheme(3))
        dec = CanopusDecoder(BPDataset.open("c", h))
        dec.restore_to("f", 0)
        bytes_first = h.clock.bytes_moved(op="read")
        dec.restore_to("f", 0)
        bytes_second = h.clock.bytes_moved(op="read") - bytes_first
        # Second restore reads field payloads only (mesh/mapping cached).
        field_bytes = sum(
            r.length
            for r in dec.dataset.select()
            if r.kind in ("base", "delta")
        )
        assert bytes_second <= field_bytes + 16

    def test_prefetch_idempotent(self, tmp_path):
        mesh = disk(200, seed=1)
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4})
        enc.encode("c", "f", mesh, mesh.vertices[:, 1], LevelScheme(2))
        dec = CanopusDecoder(BPDataset.open("c", h))
        first = dec.prefetch_geometry("f")
        second = dec.prefetch_geometry("f")
        assert first.io_seconds > 0
        assert second.io_seconds == 0.0


class TestCompressionResult:
    def test_ratio_and_normalized(self):
        r = CompressionResult(
            codec="x", original_bytes=1000, compressed_bytes=250,
            max_abs_error=0.0, encode_seconds=0.1, decode_seconds=0.1,
        )
        assert r.ratio == 4.0
        assert r.normalized_size == 0.25

    def test_zero_compressed_guard(self):
        r = CompressionResult(
            codec="x", original_bytes=10, compressed_bytes=0,
            max_abs_error=0.0, encode_seconds=0.0, decode_seconds=0.0,
        )
        assert r.ratio == 10.0


class TestPlaneAccessorOn1D:
    def test_plane_on_unstacked_field(self, tmp_path):
        from repro.core.decoder import LevelData, PhaseTimings

        mesh = disk(10, seed=2)
        state = LevelData(
            var="v", level=0, mesh=mesh, field=np.arange(10.0),
            timings=PhaseTimings(),
        )
        assert np.array_equal(state.plane(0), np.arange(10.0))
