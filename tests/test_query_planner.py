"""Accuracy-aware retrieval planner + summary pushdown (repro.query).

Everything here runs against a *cold-opened* dataset: the campaign is
encoded, closed, and re-opened from the catalog, so every summary the
planner consumes must have survived the catalog round-trip (the
sidecar-metadata contract of the paper's §III-C). Covers:

* :class:`ChunkStats` NaN safety and exact chunk merging;
* :class:`QueryEngine` predicates over the persisted summaries;
* :class:`QueryPlanner` — certified stopping levels, bit-identity with
  the measure-as-you-go progressive loop, chunk pruning, explainable
  plans, and the no-summaries fallback;
* query-shape validation (:class:`QueryError` for bad tolerance/region);
* pushdown statistics/blob queries with zero restores on pruned paths;
* the elastic feedback loop: ``note_plan`` → ``AccessTracker`` →
  ``PlacementEngine.plan_replacement``.
"""

import json
import math

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.decode_engine import DecodeEngine
from repro.core.progressive import ProgressiveReader
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import QueryError, RestorationError
from repro.io import BPDataset
from repro.io.query import ChunkStats, QueryEngine
from repro.query import (
    QueryPlanner,
    RetrievalPlan,
    blob_query,
    normalize_region,
    stats_query,
)
from repro.session import Session
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan
from repro.storage.placement import PlacementEngine
from repro.storage.policy import AccessTracker

CHUNKS = 16
LEVELS = 3


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """Encoded + closed + cold-reopened XGC1 campaign."""
    ds = make_xgc1(scale=0.4)
    h = two_tier_titan(
        tmp_path_factory.mktemp("planner"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"},
        chunks=CHUNKS,
    )
    enc.encode("q", "dpot", ds.mesh, ds.field, LevelScheme(LEVELS))
    get_restored_cache().clear()
    get_geometry_cache().clear()
    yield ds, h
    get_restored_cache().clear()
    get_geometry_cache().clear()


@pytest.fixture()
def engine(campaign):
    _, h = campaign
    dataset = BPDataset.open("q", h)
    engine = DecodeEngine(dataset, use_restored_cache=False)
    yield engine
    dataset.close()


def _roi(ds, half):
    center = ds.mesh.vertices[int(np.argmax(ds.field))]
    return center - half, center + half


# ---------------------------------------------------------------------------
class TestChunkStats:
    def test_nan_values_are_excluded(self):
        values = np.array([1.0, np.nan, -3.0, np.inf, 2.0, -np.inf])
        stats = ChunkStats.of(values)
        assert stats.vmin == -3.0
        assert stats.vmax == 2.0
        assert stats.vabs_max == 3.0
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.0)
        assert stats.rms == pytest.approx(math.sqrt(14.0 / 3.0))

    def test_all_nan_chunk_reports_empty(self):
        stats = ChunkStats.of(np.full(8, np.nan))
        assert stats.count == 0
        assert stats.vmin == stats.vmax == stats.vabs_max == 0.0
        assert stats.mean == 0.0 and stats.rms == 0.0

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(100), rng.standard_normal(37) * 5
        merged = ChunkStats.merge([ChunkStats.of(a), ChunkStats.of(b)])
        whole = ChunkStats.of(np.concatenate([a, b]))
        for field in ("vmin", "vmax", "vabs_max", "count"):
            assert getattr(merged, field) == getattr(whole, field)
        assert merged.rms == pytest.approx(whole.rms)
        assert merged.mean == pytest.approx(whole.mean)

    def test_merge_ignores_empty_parts(self):
        a = ChunkStats.of(np.array([1.0, 2.0]))
        empty = ChunkStats.of(np.full(4, np.nan))
        merged = ChunkStats.merge([a, empty])
        assert merged.count == 2 and merged.vmax == 2.0

    def test_legacy_three_field_summaries_deserialize(self):
        raw = {"vmin": -1.0, "vmax": 2.0, "vabs_max": 2.0}
        stats = ChunkStats(**raw)
        assert stats.count == 0
        assert stats.rms == 0.0


# ---------------------------------------------------------------------------
class TestQueryEngineCold:
    """Predicates over the cold-opened catalog (no data I/O at all)."""

    def test_candidates_above_prunes_provably_low_chunks(self, campaign):
        ds, h = campaign
        q = QueryEngine(BPDataset.open("q", h))
        everything = q.candidates_above(-np.inf, kind="delta")
        nothing = q.candidates_above(np.inf, kind="delta")
        mid = q.candidates_above(
            float(np.quantile(ds.field, 0.99)) * 0.01, kind="delta"
        )
        assert everything and not nothing
        assert set(nothing) <= set(mid) <= set(everything)

    def test_candidates_significant_monotone(self, campaign):
        _, h = campaign
        q = QueryEngine(BPDataset.open("q", h))
        counts = [
            len(q.candidates_significant(m, kind="delta"))
            for m in (0.0, 1e-3, 1e-2, 1e-1)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < counts[0]

    def test_prune_report_accounts_bytes(self, campaign):
        ds, h = campaign
        q = QueryEngine(BPDataset.open("q", h))
        report = q.prune_report(float(ds.field.max()) * 2, kind="delta")
        assert report["kept_products"] < report["total_products"]
        assert report["kept_bytes"] < report["total_bytes"]

    def test_every_payload_product_has_a_summary(self, campaign):
        _, h = campaign
        dataset = BPDataset.open("q", h)
        for key in dataset.keys():
            rec = dataset.inq(key)
            if rec.kind in ("base", "delta", "chunk"):
                stats = rec.attrs.get("stats")
                assert stats is not None, key
                assert stats["count"] > 0


# ---------------------------------------------------------------------------
class TestPlanner:
    def test_certified_target_matches_progressive_loop(self, campaign, engine):
        planner = QueryPlanner(engine)
        plan = planner.plan_restore("dpot", tolerance=1e-3)
        assert plan.complete and plan.mode == "tolerance"
        reader = ProgressiveReader(engine.decoder, "dpot")
        legacy = reader.refine_until(rms_tolerance=1e-3, max_level=0)
        assert plan.target_level == legacy.level

    def test_bit_identity_unfiltered(self, campaign, engine):
        state, plan = QueryPlanner(engine).restore("dpot", tolerance=1e-3)
        fresh = DecodeEngine(engine.dataset, use_restored_cache=False)
        legacy = ProgressiveReader(fresh.decoder, "dpot").refine_until(
            rms_tolerance=1e-3, max_level=0
        )
        assert state.level == legacy.level
        assert np.array_equal(state.field, legacy.field)
        assert state.last_delta_rms == legacy.last_delta_rms

    def test_met_tolerance_stops_early_within_bound(self, campaign, engine):
        planner = QueryPlanner(engine)
        # Pick a tolerance the coarsest refinement provably satisfies.
        coarse = planner.plan_restore("dpot", tolerance=1e-6)
        base_level = engine.decoder.scheme("dpot").base_level
        tol = coarse.level_rms[base_level - 1] * 1.01
        state, plan = planner.restore("dpot", tolerance=tol)
        assert plan.target_level == base_level - 1
        assert state.level == base_level - 1
        assert state.last_delta_rms <= tol
        fresh = DecodeEngine(engine.dataset, use_restored_cache=False)
        legacy = ProgressiveReader(fresh.decoder, "dpot").refine_until(
            rms_tolerance=tol, max_level=0
        )
        assert np.array_equal(state.field, legacy.field)

    def test_bit_identity_with_region(self, campaign, engine):
        ds, _ = campaign
        region = _roi(ds, 0.3)
        state, plan = QueryPlanner(engine).restore(
            "dpot", tolerance=1e-3, region=region
        )
        fresh = DecodeEngine(engine.dataset, use_restored_cache=False)
        legacy = ProgressiveReader(fresh.decoder, "dpot").refine_until(
            rms_tolerance=1e-3, max_level=0, region=region
        )
        assert np.array_equal(state.field, legacy.field)
        assert plan.pruned_chunks > 0

    def test_exact_level_plan_is_bit_identical(self, campaign, engine):
        planner = QueryPlanner(engine)
        state, plan = planner.restore("dpot", level=0)
        fresh = DecodeEngine(engine.dataset, use_restored_cache=False)
        full = fresh.restore("dpot", 0)
        assert np.array_equal(state.field, full.field)
        assert plan.mode == "level" and plan.skipped_bytes == 0

    def test_loose_tolerance_skips_finer_levels(self, campaign, engine):
        planner = QueryPlanner(engine)
        loose = planner.plan_restore("dpot", tolerance=10.0)
        tight = planner.plan_restore("dpot", tolerance=1e-6)
        assert loose.target_level > 0
        assert loose.skipped_levels
        assert loose.planned_bytes < tight.planned_bytes
        skipped_keys = {
            d.key for d in loose.decisions if not d.fetched
        }
        assert not skipped_keys & set(loose.fetch_keys())

    def test_plan_is_explainable_and_serializable(self, campaign, engine):
        ds, _ = campaign
        plan = QueryPlanner(engine).plan_restore(
            "dpot", tolerance=1e-3, region=_roi(ds, 0.2)
        )
        text = plan.explain()
        assert "retrieval plan for 'dpot'" in text
        assert "bbox outside region" in text
        doc = json.loads(json.dumps(plan.to_dict()))
        assert doc["pruned_chunks"] == plan.pruned_chunks
        assert doc["planned_bytes"] == plan.planned_bytes
        assert len(doc["decisions"]) == len(plan.decisions)

    def test_missing_summaries_fall_back(self, campaign):
        _, h = campaign
        dataset = BPDataset.open("q", h)
        try:
            for key in dataset.keys():
                dataset.inq(key).attrs.pop("stats", None)
            engine = DecodeEngine(dataset, use_restored_cache=False)
            plan = QueryPlanner(engine).plan_restore("dpot", tolerance=1e-3)
            assert not plan.complete
        finally:
            dataset.close()

    def test_session_restore_uses_planner_and_falls_back(self, campaign):
        _, h = campaign
        with Session(h, use_restored_cache=False) as session:
            handle = session.open("q")
            planned = handle.restore("dpot", tolerance=1e-3)
            # Strip the summaries: the same call must route through the
            # measure-as-you-go loop and produce the same field.
            for key in handle.dataset.keys():
                handle.dataset.inq(key).attrs.pop("stats", None)
            assert not handle.plan("dpot", tolerance=1e-3).complete
            legacy = handle.restore("dpot", tolerance=1e-3)
            assert np.array_equal(planned.field, legacy.field)


# ---------------------------------------------------------------------------
class TestValidation:
    def test_non_positive_tolerance_rejected(self, campaign):
        _, h = campaign
        with Session(h) as session:
            handle = session.open("q")
            for bad in (0.0, -1.0):
                with pytest.raises(QueryError):
                    handle.restore("dpot", tolerance=bad)

    def test_query_error_is_a_value_error_with_400_code(self):
        from repro.errors import error_code, http_status

        exc = QueryError("nope")
        assert isinstance(exc, ValueError)
        assert error_code(exc) == "bad-request"
        assert http_status(exc) == 400

    def test_empty_region_rejected(self, campaign):
        _, h = campaign
        with Session(h) as session:
            handle = session.open("q")
            with pytest.raises(QueryError):
                handle.restore("dpot", region=((5.0, 5.0), (1.0, 1.0)))
            with pytest.raises(QueryError):
                handle.restore("dpot", region=((0.0,), (1.0,)))
            with pytest.raises(QueryError):
                handle.restore(
                    "dpot", region=((np.nan, 0.0), (1.0, 1.0))
                )

    def test_normalize_region_passthrough(self):
        assert normalize_region(None) is None
        lo, hi = normalize_region(((0, 0), (1, 1)))
        assert lo.dtype == np.float64 and hi.shape == (2,)

    def test_level_and_tolerance_conflict(self, campaign, engine):
        with pytest.raises(RestorationError):
            QueryPlanner(engine).plan_restore("dpot", level=1, tolerance=0.1)


# ---------------------------------------------------------------------------
class TestPushdown:
    def test_whole_variable_stats_zero_restores(self, campaign, engine):
        ds, h = campaign
        before = h.clock.bytes_moved(op="read")
        result = stats_query(engine, "dpot")
        assert result["pushdown"] is True and result["restores"] == 0
        assert h.clock.bytes_moved(op="read") == before
        assert result["stats"]["vmax"] == pytest.approx(float(ds.field.max()))
        assert result["stats"]["vmin"] == pytest.approx(float(ds.field.min()))
        assert result["stats"]["mean"] == pytest.approx(float(ds.field.mean()))
        assert result["stats"]["count"] == ds.field.size

    def test_windowed_stats_prune_without_restores(self, campaign, engine):
        ds, h = campaign
        region = _roi(ds, 0.3)
        before = h.clock.bytes_moved(op="read")
        result = stats_query(engine, "dpot", region=region)
        assert result["pushdown"] is True and result["restores"] == 0
        assert h.clock.bytes_moved(op="read") == before
        assert result["pruned_chunks"] > 0
        assert result["granularity"] == "chunk"
        # Chunk-granular window covers at least the exact window max.
        lo, hi = region
        v = ds.mesh.vertices
        mask = (
            (v[:, 0] >= lo[0]) & (v[:, 0] <= hi[0])
            & (v[:, 1] >= lo[1]) & (v[:, 1] <= hi[1])
        )
        assert result["stats"]["vmax"] >= float(ds.field[mask].max()) - 1e-12

    def test_stats_fallback_without_summaries(self, campaign):
        _, h = campaign
        dataset = BPDataset.open("q", h)
        try:
            for key in dataset.keys():
                dataset.inq(key).attrs.pop("stats", None)
            meta = dataset.catalog.attrs["variables"]["dpot"]
            meta.pop("field_stats", None)
            engine = DecodeEngine(dataset, use_restored_cache=False)
            result = stats_query(engine, "dpot")
            assert result["pushdown"] is False and result["restores"] == 1
        finally:
            dataset.close()

    def test_blob_query_above_max_restores_nothing(self, campaign, engine):
        ds, h = campaign
        before = h.clock.bytes_moved(op="read")
        result = blob_query(
            engine, "dpot", threshold=float(ds.field.max()) * 2 + 1
        )
        assert result["count"] == 0 and result["restores"] == 0
        assert result["pruned_chunks"] == CHUNKS
        assert h.clock.bytes_moved(op="read") == before

    def test_blob_query_survivors_one_focused_restore(self, campaign, engine):
        ds, _ = campaign
        threshold = float(np.quantile(ds.field, 0.995))
        result = blob_query(engine, "dpot", threshold=threshold)
        assert result["restores"] == 1
        assert result["count"] >= 1
        lo, hi = ds.mesh.bounding_box()
        for blob in result["blobs"]:
            x, y = blob["center"]
            assert lo[0] <= x <= hi[0] and lo[1] <= y <= hi[1]


# ---------------------------------------------------------------------------
class TestElasticFeedback:
    def test_note_plan_heats_fetched_subfiles(self, campaign, engine):
        planner = QueryPlanner(engine)
        plan = planner.plan_restore("dpot", tolerance=1e-3)
        tracker = AccessTracker()
        noted = planner.note_plan(tracker, plan, now=1.0)
        assert noted == len(plan.fetch_keys())
        assert tracker.records
        assert sum(i.reads for i in tracker.records.values()) == noted

    def test_query_workload_shifts_plan_replacement(self, campaign, engine):
        _, h = campaign
        planner = QueryPlanner(engine)
        cold = PlacementEngine(h).plan_replacement(AccessTracker())
        assert all(d.weight == 0.0 for d in cold.decisions)

        tracker = AccessTracker()
        for _ in range(5):
            plan = planner.plan_restore("dpot", tolerance=1e-3)
            planner.note_plan(tracker, plan, now=h.clock.elapsed)
        hot = PlacementEngine(h).plan_replacement(tracker)
        hot_weights = {d.key: d.weight for d in hot.decisions}
        touched = {
            engine.dataset.inq(k).subfile for k in plan.fetch_keys()
        } - {None, ""}
        assert touched
        assert all(hot_weights[s] > 0 for s in touched)
        assert max(hot_weights.values()) > 0
