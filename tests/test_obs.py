"""Unit tests for the observability layer (repro.obs).

Covers: span nesting and exception safety, dual-clock attribution
against a SimClock, Chrome trace-event export round-trip, metrics
registry semantics + concurrency, EngineStats as a registry view, and
the allocation-free disabled fast path.
"""

from __future__ import annotations

import gc
import json
import sys
import threading

import pytest

from repro.io.engine import EngineStats
from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    trace,
    trace_session,
)
from repro.storage.simclock import SimClock


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    assert trace.get_tracer() is None
    yield
    assert trace.get_tracer() is None


class TestSpanBasics:
    def test_nesting_records_parent_ids(self):
        with trace_session() as tracer:
            with trace.span("outer", "a"):
                with trace.span("inner", "b"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        # Children finish first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_wall_times_are_ordered(self):
        with trace_session() as tracer:
            with trace.span("s"):
                pass
        (rec,) = tracer.spans
        assert rec.wall_end >= rec.wall_start >= 0.0
        assert rec.wall_seconds == rec.wall_end - rec.wall_start

    def test_exception_propagates_and_is_recorded(self):
        with trace_session() as tracer:
            with pytest.raises(ValueError):
                with trace.span("boom"):
                    raise ValueError("no")
        (rec,) = tracer.spans
        assert rec.error == "ValueError"

    def test_note_merges_args(self):
        with trace_session() as tracer:
            with trace.span("s", "c", {"a": 1}) as sp:
                sp.note(b=2)
        (rec,) = tracer.spans
        assert rec.args == {"a": 1, "b": 2}

    def test_sessions_nest_inner_wins(self):
        with trace_session() as outer:
            with trace_session() as inner:
                assert trace.get_tracer() is inner
                with trace.span("x"):
                    pass
            assert trace.get_tracer() is outer
        assert [s.name for s in inner.spans] == ["x"]
        assert outer.spans == []

    def test_per_thread_stacks(self):
        with trace_session() as tracer:
            def worker():
                with trace.span("child-thread"):
                    pass

            with trace.span("main"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        by_name = {s.name: s for s in tracer.spans}
        # A thread's root span has no parent, even if main has one open.
        assert by_name["child-thread"].parent_id is None


class TestDualClock:
    def test_charge_attributed_to_innermost_span(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            with trace.span("outer"):
                clock.charge("t", "read", 10, 0.5)
                with trace.span("inner"):
                    clock.charge("t", "read", 10, 1.5)
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].sim_charged == pytest.approx(0.5)
        assert by_name["inner"].sim_charged == pytest.approx(1.5)
        # The outer span observes the full simulated advance inclusively.
        assert by_name["outer"].sim_seconds == pytest.approx(2.0)
        assert by_name["inner"].sim_seconds == pytest.approx(1.5)

    def test_concurrent_charge_busy_exceeds_advance(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            with trace.span("batch"):
                clock.charge_concurrent(
                    [("a", "read", 10, 1.0), ("b", "read", 10, 0.25)]
                )
        (rec,) = tracer.spans
        assert rec.sim_charged == pytest.approx(1.0)  # max-per-tier
        assert rec.sim_busy == pytest.approx(1.25)  # busy sums

    def test_io_records_queue_per_tier(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            clock.charge_concurrent(
                [("a", "read", 1, 1.0), ("a", "read", 1, 0.5),
                 ("b", "read", 1, 0.25)]
            )
        a = [r for r in tracer.io_records if r.tier == "a"]
        b = [r for r in tracer.io_records if r.tier == "b"]
        assert a[0].sim_start == pytest.approx(0.0)
        assert a[1].sim_start == pytest.approx(1.0)  # queued behind a[0]
        assert b[0].sim_start == pytest.approx(0.0)  # overlaps tier a

    def test_listener_detached_on_exit(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            clock.charge("t", "read", 1, 0.1)
        n = len(tracer.io_records)
        clock.charge("t", "read", 1, 0.1)  # after the session
        assert len(tracer.io_records) == n

    def test_resolve_clock_rejects_clockless_target(self):
        with pytest.raises(TypeError):
            with trace_session(object()):
                pass


class TestChromeExport:
    def _traced(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            with trace.span("work", "compute"):
                clock.charge("tmpfs", "read", 64, 0.25)
        return tracer

    def test_round_trip_shape(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in events if e["ph"] == "X"]
        ms = [e for e in events if e["ph"] == "M"]
        assert xs and ms
        for e in xs:
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)

    def test_wall_and_sim_processes(self):
        tracer = self._traced()
        events = chrome_trace_events(tracer.spans, tracer.io_records)
        x_pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert x_pids == {1, 2}
        # Process names announce the two clocks.
        pnames = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert pnames == {"wall clock", "simulated I/O"}
        # The tier transfer landed on a named per-tier track.
        tier_tracks = [
            e for e in events
            if e["ph"] == "M" and e["args"]["name"] == "tier tmpfs"
        ]
        assert len(tier_tracks) == 1
        tier_tid = tier_tracks[0]["tid"]
        transfers = [
            e for e in events
            if e["ph"] == "X" and e["pid"] == 2 and e["tid"] == tier_tid
        ]
        assert transfers and transfers[0]["args"]["nbytes"] == 64

    def test_span_args_carry_both_durations(self):
        tracer = self._traced()
        events = chrome_trace_events(tracer.spans)
        x = next(e for e in events if e["ph"] == "X")
        assert "wall_seconds" in x["args"]
        assert "sim_seconds" in x["args"]

    def test_sim_event_duration_matches_charge(self):
        tracer = self._traced()
        events = chrome_trace_events(tracer.spans, tracer.io_records)
        sim = [
            e for e in events
            if e["ph"] == "X" and e["pid"] == 2 and e["name"] == "work"
        ]
        assert len(sim) == 1
        assert sim[0]["dur"] == pytest.approx(0.25e6)


class TestSinks:
    def test_in_memory_sink_sees_each_span(self):
        sink = InMemorySink()
        with trace_session(sinks=[sink]):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        assert [r.name for r in sink.records] == ["a", "b"]

    def test_jsonl_sink_streams_parseable_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace_session(sinks=[JsonlSink(path)]):
            with trace.span("a", "cat", {"k": 1}):
                pass
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["name"] == "a" and lines[0]["args"] == {"k": 1}

    def test_export_jsonl_includes_io(self, tmp_path):
        clock = SimClock()
        with trace_session(clock) as tracer:
            clock.charge("t", "read", 8, 0.1)
        out = tmp_path / "all.jsonl"
        tracer.export_jsonl(out)
        kinds = [json.loads(x)["kind"] for x in out.read_text().splitlines()]
        assert "io" in kinds


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.counter("c", tier="a") is not reg.counter("c", tier="b")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.counter("by_tier", tier="fast").inc(2)
        reg.gauge("occ").set(0.5)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert snap["hits"] == 3
        assert snap["by_tier{tier=fast}"] == 2
        assert snap["occ"] == 0.5
        assert snap["lat"]["count"] == 1
        assert reg.label_values("by_tier", "tier") == {"fast": 2}
        assert reg.value("missing", default=-1) == -1

    def test_reset_keeps_references_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        c.inc()
        assert reg.value("n") == 1

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        threads = 8
        per_thread = 5000

        def worker():
            for _ in range(per_thread):
                reg.counter("n").inc()
                reg.counter("labeled", t="x").inc()

        ts = [threading.Thread(target=worker) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.value("n") == threads * per_thread
        assert reg.value("labeled", t="x") == threads * per_thread


class TestEngineStatsView:
    def test_legacy_attributes_route_through_registry(self):
        stats = EngineStats()
        stats.record_hit("tmpfs", 100)
        stats.record_miss("lustre", 400)
        stats.incr("prefetch_issued", 3)
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.bytes_from_cache == 100
        assert stats.prefetch_issued == 3
        assert stats.hits_by_tier == {"tmpfs": 1}
        assert stats.misses_by_tier == {"lustre": 1}
        assert stats.bytes_from_tier == {"lustre": 400}

    def test_snapshot_reset(self):
        stats = EngineStats()
        stats.incr("hits", 2)
        snap = stats.snapshot()
        assert snap["hits"] == 2
        stats.reset()
        assert stats.hits == 0
        assert snap["hits"] == 2  # snapshot is a copy

    def test_as_dict_is_plain_data(self):
        stats = EngineStats()
        stats.record_hit("t", 1)
        d = stats.as_dict()
        assert isinstance(d, dict)
        json.dumps(d)  # JSON-ready

    def test_thread_safe_counting(self):
        stats = EngineStats()

        def worker():
            for _ in range(2000):
                stats.record_hit("t", 1)

        ts = [threading.Thread(target=worker) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert stats.hits == 16000
        assert stats.bytes_from_cache == 16000


class TestDisabledFastPath:
    def test_span_returns_shared_singleton(self):
        assert trace.span("a") is trace.span("b")
        assert trace.enabled() is False

    def test_noop_span_contextmanager(self):
        with trace.span("a") as sp:
            sp.note(anything=1)  # swallowed

    def test_disabled_span_allocates_nothing(self):
        # Warm up, then measure allocated blocks across many iterations.
        for _ in range(100):
            with trace.span("warm"):
                pass
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(1000):
            with trace.span("hot"):
                pass
        gc.collect()
        after = sys.getallocatedblocks()
        assert after - before < 50, f"allocated {after - before} blocks"


class TestSummary:
    def test_summary_groups_by_category(self):
        clock = SimClock()
        with trace_session(clock) as tracer:
            with trace.span("a", "io"):
                clock.charge("t", "read", 1, 0.5)
            with trace.span("b", "io"):
                pass
            with trace.span("c", "compute"):
                pass
        summary = tracer.summary()
        assert summary["io"]["spans"] == 2
        assert summary["io"]["sim_charged"] == pytest.approx(0.5)
        assert summary["compute"]["spans"] == 1

    def test_tracer_repr_mentions_counts(self):
        tracer = Tracer()
        assert "spans=0" in repr(tracer)


class TestTeardownHardening:
    """trace_session must fully detach even when everything raises."""

    def test_failed_session_detaches_clock_listener(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with trace_session(clock):
                raise RuntimeError("boom")
        assert trace.get_tracer() is None
        assert clock._listeners == []

    def test_two_failed_sessions_do_not_double_attribute(self):
        """Charges after two crashed sessions land on exactly one tracer."""
        clock = SimClock()
        for _ in range(2):
            with pytest.raises(RuntimeError):
                with trace_session(clock):
                    clock.charge("t", "read", 1, 0.5)
                    raise RuntimeError("boom")
        with trace_session(clock) as tracer:
            with trace.span("after"):
                clock.charge("t", "read", 1, 0.25)
        (rec,) = tracer.spans
        # One listener, one attribution: not doubled by dead tracers.
        assert rec.sim_charged == pytest.approx(0.25)
        assert len(tracer.io_records) == 1
        assert clock._listeners == []

    def test_raising_sink_close_does_not_skip_detach(self, tmp_path):
        class BadSink(InMemorySink):
            def close(self):
                raise OSError("disk full")

        clock = SimClock()
        with pytest.raises(OSError, match="disk full"):
            with trace_session(clock, sinks=[BadSink()]):
                pass
        assert trace.get_tracer() is None
        assert clock._listeners == []

    def test_raising_sink_close_still_exports(self, tmp_path):
        """Every sink is closed and exports run before the close error."""
        closed = []

        class BadSink(InMemorySink):
            def close(self):
                closed.append(self)
                raise OSError("close failed")

        out = tmp_path / "trace.json"
        clock = SimClock()
        with pytest.raises(OSError, match="close failed"):
            with trace_session(
                clock, sinks=[BadSink(), BadSink()], chrome_path=out
            ):
                with trace.span("work"):
                    pass
        assert len(closed) == 2  # the first failure didn't skip the second
        assert out.exists()  # the chrome export still ran
        assert trace.get_tracer() is None

    def test_body_and_close_both_raise_body_error_wins(self):
        class BadSink(InMemorySink):
            def close(self):
                raise OSError("close failed")

        with pytest.raises(ValueError, match="body"):
            with trace_session(sinks=[BadSink()]):
                raise ValueError("body")
        assert trace.get_tracer() is None
