"""Tests for the dataset integrity checker."""

import pytest

from repro.harness import setup_experiment
from repro.io import BPDataset
from repro.io.fsck import check_dataset
from repro.storage import two_tier_titan


@pytest.fixture
def setup(tmp_path):
    return setup_experiment("xgc1", tmp_path, scale=0.1, chunks=4)


def _corrupt(tier, relpath, offset):
    path = tier._path(relpath)
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCheckDataset:
    def test_healthy_dataset(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        result = check_dataset(ds)
        assert result.healthy
        assert result.ok == result.checked > 0
        assert "products ok" in result.report()

    def test_detects_corrupt_delta_payload(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/delta0-1/chunk0")
        tier = setup.hierarchy.tier(rec.tier)
        # Flip a byte in the middle of that chunk's payload body.
        _corrupt(tier, rec.subfile, rec.offset + rec.length // 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        assert any("chunk0" in key for key, _ in result.problems)

    def test_detects_corrupt_mesh(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/mesh2")
        tier = setup.hierarchy.tier(rec.tier)
        _corrupt(tier, rec.subfile, rec.offset + 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        keys = [k for k, _ in result.problems]
        assert "dpot/mesh2" in keys

    def test_detects_missing_subfile(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/L2")
        setup.hierarchy.tier(rec.tier).delete(rec.subfile)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        assert any("unreadable" in p for _, p in result.problems)

    def test_report_lists_each_problem(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/mesh2")
        tier = setup.hierarchy.tier(rec.tier)
        _corrupt(tier, rec.subfile, rec.offset + 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert "BAD" in result.report()

    def test_baseline_dataset_checks(self, setup):
        ds = BPDataset.open(setup.baseline_name, setup.hierarchy)
        assert check_dataset(ds).healthy


class TestBackendInventory:
    """fsck audits the per-tier object-store inventory below the catalog."""

    @pytest.fixture
    def sharded(self, tmp_path):
        h = two_tier_titan(
            tmp_path, fast_capacity=32 << 20, backend="sharded",
            shards=2, chunk_size=128,
        )
        ds = BPDataset.create("run", h)
        ds.write("run.a", b"x" * 1000)
        ds.write("run.b", bytes(range(256)) * 4)
        ds.close()
        return h, BPDataset.open("run", h)

    def _subfile_backend(self, h, ds):
        rec = ds.inq("run.a")
        tier = h.tier(rec.tier)
        return tier, tier.backend, rec.subfile

    def test_healthy_sharded_dataset(self, sharded):
        _, ds = sharded
        result = check_dataset(ds)
        assert result.healthy
        assert result.backend_problems == []

    def test_missing_chunk_detected(self, sharded):
        h, ds = sharded
        tier, backend, subfile = self._subfile_backend(h, ds)
        backend._store_for(1).delete(backend._chunk_key(subfile, 1))
        result = check_dataset(BPDataset.open("run", h))
        assert not result.healthy
        assert any(
            "missing chunk" in p and t == tier.name
            for t, p in result.backend_problems
        )
        assert "BAD backend[" in result.report()

    def test_crc_mismatch_across_chunk_boundaries(self, sharded):
        h, ds = sharded
        _, backend, subfile = self._subfile_backend(h, ds)
        # Swap two equal-size chunks: sizes all check out, only the
        # whole-object CRC spanning boundaries can notice.
        k0, k1 = (backend._chunk_key(subfile, i) for i in (0, 1))
        s0, s1 = backend._store_for(0), backend._store_for(1)
        c0, c1 = s0.get(k0), s1.get(k1)
        s0.put(k0, c1)
        s1.put(k1, c0)
        result = check_dataset(BPDataset.open("run", h))
        assert any("crc mismatch" in p for _, p in result.backend_problems)

    def test_orphaned_chunk_detected(self, sharded):
        h, ds = sharded
        _, backend, _ = self._subfile_backend(h, ds)
        backend._store_for(1).put("run.ghost.bp#000001", b"stray")
        result = check_dataset(ds)
        assert any(
            "orphaned chunk" in p for _, p in result.backend_problems
        )

    def test_findings_scoped_to_dataset(self, sharded):
        h, ds = sharded
        _, backend, _ = self._subfile_backend(h, ds)
        # Damage belonging to a *different* dataset sharing the tier must
        # not fail this dataset's fsck.
        backend._store_for(0).put("other.lustre.bp#000000", b"stray")
        assert check_dataset(ds).healthy

    def test_footer_reparse_through_backend(self, tmp_path):
        h = two_tier_titan(tmp_path, backend="memory")
        ds = BPDataset.create("run", h)
        ds.write("run.a", b"payload")
        ds.close()
        rd = BPDataset.open("run", h)
        rec = rd.inq("run.a")
        tier = h.tier(rec.tier)
        # Truncate the subfile behind the tier's accounting: the footer
        # re-parse through ranged backend reads must flag it.
        blob = tier.backend.get(rec.subfile)
        tier.backend.put(rec.subfile, blob[: len(blob) // 2])
        result = check_dataset(rd)
        assert any(
            "footer unreadable" in p or "unreadable" in p
            for _, p in (result.backend_problems + result.problems)
        )
