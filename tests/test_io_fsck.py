"""Tests for the dataset integrity checker."""

import pytest

from repro.harness import setup_experiment
from repro.io import BPDataset
from repro.io.fsck import check_dataset


@pytest.fixture
def setup(tmp_path):
    return setup_experiment("xgc1", tmp_path, scale=0.1, chunks=4)


def _corrupt(tier, relpath, offset):
    path = tier._path(relpath)
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCheckDataset:
    def test_healthy_dataset(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        result = check_dataset(ds)
        assert result.healthy
        assert result.ok == result.checked > 0
        assert "products ok" in result.report()

    def test_detects_corrupt_delta_payload(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/delta0-1/chunk0")
        tier = setup.hierarchy.tier(rec.tier)
        # Flip a byte in the middle of that chunk's payload body.
        _corrupt(tier, rec.subfile, rec.offset + rec.length // 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        assert any("chunk0" in key for key, _ in result.problems)

    def test_detects_corrupt_mesh(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/mesh2")
        tier = setup.hierarchy.tier(rec.tier)
        _corrupt(tier, rec.subfile, rec.offset + 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        keys = [k for k, _ in result.problems]
        assert "dpot/mesh2" in keys

    def test_detects_missing_subfile(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/L2")
        setup.hierarchy.tier(rec.tier).delete(rec.subfile)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert not result.healthy
        assert any("unreadable" in p for _, p in result.problems)

    def test_report_lists_each_problem(self, setup):
        ds = BPDataset.open(setup.canopus_name, setup.hierarchy)
        rec = ds.inq("dpot/mesh2")
        tier = setup.hierarchy.tier(rec.tier)
        _corrupt(tier, rec.subfile, rec.offset + 2)
        result = check_dataset(BPDataset.open(setup.canopus_name, setup.hierarchy))
        assert "BAD" in result.report()

    def test_baseline_dataset_checks(self, setup):
        ds = BPDataset.open(setup.baseline_name, setup.hierarchy)
        assert check_dataset(ds).healthy
