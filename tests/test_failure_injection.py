"""Failure-injection tests: corrupt payloads, truncation, capacity edges.

A production data-management layer must fail loudly and precisely when
storage misbehaves. These tests corrupt bytes at every layer boundary
and assert that the matching typed error surfaces (never a silent wrong
answer, never a bare ValueError from numpy internals).
"""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.errors import (
    BPFormatError,
    CapacityError,
    CompressionError,
    MeshError,
    RefactoringError,
    ReproError,
    StorageError,
)
from repro.io import BPDataset
from repro.mesh.generators import disk
from repro.mesh.io import mesh_from_bytes, mesh_to_bytes
from repro.simulations import make_xgc1
from repro.storage import StorageHierarchy, StorageTier, two_tier_titan


@pytest.fixture
def encoded(tmp_path):
    ds = make_xgc1(scale=0.1)
    h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
    enc = CanopusEncoder(h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"})
    enc.encode("run", "dpot", ds.mesh, ds.field, LevelScheme(3))
    return ds, h


def _corrupt_file(tier, relpath, *, offset=100, flip=0xFF, truncate=None):
    path = tier._path(relpath)
    data = bytearray(path.read_bytes())
    if truncate is not None:
        data = data[:truncate]
    else:
        data[offset % len(data)] ^= flip
    path.write_bytes(bytes(data))
    tier._files[relpath] = len(data)


class TestCorruptPayloads:
    def test_corrupt_catalog_detected(self, encoded):
        _, h = encoded
        tier = h.tier("lustre")
        _corrupt_file(tier, "run.catalog.json", offset=10)
        with pytest.raises(BPFormatError):
            BPDataset.open("run", h)

    def test_truncated_subfile_detected(self, encoded):
        _, h = encoded
        tier = h.tier("lustre")
        _corrupt_file(tier, "run.lustre.bp", truncate=20)
        rd = BPDataset.open("run", h)
        with pytest.raises(StorageError):
            rd.read("dpot/delta0-1")

    def test_corrupt_codec_envelope_detected(self, encoded):
        ds, h = encoded
        rd = BPDataset.open("run", h)
        blob = bytearray(rd.read("dpot/L2"))
        blob[0] ^= 0xFF  # smash the envelope magic
        from repro.compress import decode_auto

        with pytest.raises(CompressionError):
            decode_auto(bytes(blob))

    def test_corrupt_mesh_payload_detected(self, encoded):
        ds, _ = encoded
        blob = bytearray(mesh_to_bytes(ds.mesh))
        blob[0] ^= 0xFF
        with pytest.raises(MeshError):
            mesh_from_bytes(bytes(blob))

    def test_corrupt_mapping_payload_detected(self):
        from repro.core import LevelMapping

        with pytest.raises(RefactoringError):
            LevelMapping.from_bytes(b"XXXX" + b"\x00" * 40)

    def test_zlib_corruption_in_mapping(self):
        from repro.core import build_mapping

        fine = disk(200, seed=0)
        coarse = disk(100, seed=1)
        blob = bytearray(build_mapping(fine, coarse).to_bytes())
        blob[-1] ^= 0xFF  # corrupt the deflate stream
        from repro.core import LevelMapping

        with pytest.raises(Exception) as excinfo:
            LevelMapping.from_bytes(bytes(blob))
        # zlib.error or RefactoringError are both acceptable — never a
        # silently wrong mapping.
        assert excinfo.type.__name__ in ("error", "RefactoringError")


class TestWrongCodecAndTypes:
    def test_decoding_mesh_as_field_detected(self, encoded):
        _, h = encoded
        rd = BPDataset.open("run", h)
        blob = rd.read("dpot/mesh2")
        from repro.compress import decode_auto

        with pytest.raises(CompressionError):
            decode_auto(blob)

    def test_codec_mismatch_detected(self):
        blob = get_codec("zfp", tolerance=1e-3).encode(np.arange(10.0))
        with pytest.raises(CompressionError):
            get_codec("sz", tolerance=1e-3).decode(blob)


class TestCapacityEdges:
    def test_encode_into_hopeless_hierarchy(self, tmp_path):
        ds = make_xgc1(scale=0.1)
        h = StorageHierarchy(
            [StorageTier("tiny", "ssd", 4096, tmp_path / "tiny")]
        )
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4})
        with pytest.raises(ReproError):
            enc.encode("run", "dpot", ds.mesh, ds.field, LevelScheme(2))

    def test_tier_fills_mid_campaign(self, tmp_path):
        tier = StorageTier("t", "ssd", 100, tmp_path)
        tier.write("a", b"x" * 80)
        with pytest.raises(CapacityError):
            tier.write("b", b"x" * 30)
        # The failed write must not corrupt accounting.
        assert tier.used_bytes == 80
        assert tier.read("a") == b"x" * 80

    def test_placement_failure_reports_requirements(self, tmp_path):
        h = StorageHierarchy(
            [StorageTier("only", "ssd", 64, tmp_path)]
        )
        with pytest.raises(CapacityError) as excinfo:
            h.place("big", b"x" * 1000)
        assert "1000" in str(excinfo.value)


class TestDecoderRobustness:
    def test_missing_delta_product(self, encoded):
        """Deleting a delta from storage yields a typed read error."""
        _, h = encoded
        tier = h.tier("lustre")
        # Remove the whole subfile that holds the deltas.
        tier.delete("run.lustre.bp")
        rd = BPDataset.open("run", h)
        dec = CanopusDecoder(rd)
        base = dec.read_base("dpot")  # base lives on tmpfs — still fine
        assert base.level == 2
        with pytest.raises(StorageError):
            dec.refine(base)

    def test_catalog_and_data_disagree(self, encoded):
        """Catalog offsets beyond the file are a range error, not junk."""
        _, h = encoded
        rd = BPDataset.open("run", h)
        rec = rd.inq("dpot/L2")
        rec.offset = 10**9
        with pytest.raises(StorageError):
            rd.read("dpot/L2")
