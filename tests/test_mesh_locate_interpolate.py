"""Tests for point location, barycentric coordinates, and interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError, PointLocationError
from repro.mesh import (
    TriangleLocator,
    TriangleMesh,
    barycentric_coordinates,
    interpolate_at_points,
    interpolate_to_grid,
)
from repro.mesh.generators import annulus, disk, structured_rectangle


@pytest.fixture(scope="module")
def square_mesh():
    return structured_rectangle(12, 12)


class TestBarycentric:
    def test_corners(self):
        tri = np.array([[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]])
        for corner, expect in [
            ((0, 0), [1, 0, 0]),
            ((1, 0), [0, 1, 0]),
            ((0, 1), [0, 0, 1]),
        ]:
            w = barycentric_coordinates(np.array([corner], float), tri)
            assert np.allclose(w[0], expect, atol=1e-12)

    def test_centroid(self):
        tri = np.array([[[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]]])
        w = barycentric_coordinates(np.array([[1.0, 1.0]]), tri)
        assert np.allclose(w[0], [1 / 3, 1 / 3, 1 / 3])

    def test_sums_to_one_outside(self):
        tri = np.array([[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]])
        w = barycentric_coordinates(np.array([[5.0, 5.0]]), tri)
        assert w.sum() == pytest.approx(1.0)
        assert w.min() < 0  # outside → negative coordinate

    def test_degenerate_triangle_safe(self):
        tri = np.array([[[0.0, 0.0], [0.0, 0.0], [0.0, 0.0]]])
        w = barycentric_coordinates(np.array([[1.0, 1.0]]), tri)
        assert np.isfinite(w).all()

    def test_single_point_api(self):
        tri = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        w = barycentric_coordinates(np.array([0.25, 0.25]), tri)
        assert w.shape == (1, 3)

    @settings(max_examples=50, deadline=None)
    @given(
        x=st.floats(-2, 2, allow_nan=False),
        y=st.floats(-2, 2, allow_nan=False),
    )
    def test_partition_of_unity_property(self, x, y):
        tri = np.array([[[0.1, 0.2], [1.3, 0.1], [0.4, 1.7]]])
        w = barycentric_coordinates(np.array([[x, y]]), tri)
        assert w.sum() == pytest.approx(1.0, abs=1e-9)
        # Linear reproduction: sum(w_i * corner_i) == point
        rec = (w[0][:, None] * tri[0]).sum(axis=0)
        assert np.allclose(rec, [x, y], atol=1e-9)


class TestLocator:
    def test_vertices_locate_in_incident_triangle(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        tri_ids, bary = loc.locate(square_mesh.vertices)
        assert (tri_ids >= 0).all()
        # Each vertex must appear in its assigned triangle with weight ~1.
        for i in range(square_mesh.num_vertices):
            tri = square_mesh.triangles[tri_ids[i]]
            assert i in tri
            w = bary[i][list(tri).index(i)]
            assert w == pytest.approx(1.0, abs=1e-9)

    def test_interior_points(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0.05, 0.95, size=(200, 2))
        tri_ids, bary = loc.locate(pts)
        assert (bary.min(axis=1) >= -1e-9).all()
        # Verify containment: reconstruct the point from barycentric coords.
        corners = square_mesh.vertices[square_mesh.triangles[tri_ids]]
        rec = np.einsum("ijk,ij->ik", corners, bary)
        assert np.allclose(rec, pts, atol=1e-9)

    def test_outside_points_fallback(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        tri_ids, bary = loc.locate(np.array([[5.0, 5.0]]))
        assert tri_ids[0] >= 0
        assert bary.sum() == pytest.approx(1.0)

    def test_outside_points_strict_raises(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        with pytest.raises(PointLocationError):
            loc.locate(np.array([[5.0, 5.0]]), allow_fallback=False)

    def test_empty_mesh_raises(self):
        mesh = TriangleMesh(np.zeros((0, 2)), np.zeros((0, 3), dtype=int))
        with pytest.raises(PointLocationError):
            TriangleLocator(mesh)

    def test_single_point_shape(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        tri_ids, bary = loc.locate(np.array([0.5, 0.5]))
        assert tri_ids.shape == (1,)
        assert bary.shape == (1, 3)

    def test_annulus_hole_points_get_fallback(self):
        mesh = annulus(10, 40, r_inner=0.5)
        loc = TriangleLocator(mesh)
        tri_ids, _ = loc.locate(np.array([[0.0, 0.0]]))  # center of hole
        assert tri_ids[0] >= 0  # nearest-triangle fallback

    def test_locate_many_matches_individual(self):
        mesh = disk(500, seed=3)
        loc = TriangleLocator(mesh)
        rng = np.random.default_rng(1)
        pts = rng.uniform(-0.6, 0.6, size=(50, 2))
        batch_ids, batch_w = loc.locate(pts)
        for i, p in enumerate(pts):
            tid, w = loc.locate(p)
            corners_a = mesh.vertices[mesh.triangles[batch_ids[i]]]
            corners_b = mesh.vertices[mesh.triangles[tid[0]]]
            rec_a = batch_w[i] @ corners_a
            rec_b = w[0] @ corners_b
            assert np.allclose(rec_a, rec_b, atol=1e-9)


class TestInterpolation:
    def test_linear_field_exact(self, square_mesh):
        """Barycentric interpolation reproduces linear fields exactly."""
        f = 2.0 * square_mesh.vertices[:, 0] - 3.0 * square_mesh.vertices[:, 1] + 1.0
        rng = np.random.default_rng(2)
        pts = rng.uniform(0.1, 0.9, size=(100, 2))
        vals = interpolate_at_points(square_mesh, f, pts)
        expect = 2.0 * pts[:, 0] - 3.0 * pts[:, 1] + 1.0
        assert np.allclose(vals, expect, atol=1e-9)

    def test_field_length_mismatch(self, square_mesh):
        with pytest.raises(MeshError):
            interpolate_at_points(square_mesh, np.zeros(5), np.zeros((1, 2)))

    def test_grid_shape_and_bounds(self, square_mesh):
        f = square_mesh.vertices[:, 0]
        g = interpolate_to_grid(square_mesh, f, (16, 32))
        assert g.shape == (16, 32)
        assert g[:, 0] == pytest.approx(0.0, abs=1e-9)
        assert g[:, -1] == pytest.approx(1.0, abs=1e-9)

    def test_grid_explicit_bounds(self, square_mesh):
        f = square_mesh.vertices[:, 1]
        lo = np.array([0.25, 0.25])
        hi = np.array([0.75, 0.75])
        g = interpolate_to_grid(square_mesh, f, (8, 8), bounds=(lo, hi))
        assert g.min() == pytest.approx(0.25, abs=1e-9)
        assert g.max() == pytest.approx(0.75, abs=1e-9)

    def test_tiny_grid_rejected(self, square_mesh):
        with pytest.raises(MeshError):
            interpolate_to_grid(square_mesh, square_mesh.vertices[:, 0], (1, 8))

    def test_locator_reuse(self, square_mesh):
        loc = TriangleLocator(square_mesh)
        f = square_mesh.vertices[:, 0]
        a = interpolate_at_points(square_mesh, f, np.array([[0.5, 0.5]]))
        b = interpolate_at_points(
            square_mesh, f, np.array([[0.5, 0.5]]), locator=loc
        )
        assert a == pytest.approx(b)
