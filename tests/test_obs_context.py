"""Unit tests for the request-scoped observability primitives (PR 7).

Covers: the contextvars :class:`TraceContext` lifecycle, W3C
``traceparent`` parsing/formatting, :func:`propagate` across thread
pools, bucketed-histogram quantiles, the Prometheus text exposition,
:class:`SLO` burn-rate math, :class:`JsonlLogger` correlation, and the
:class:`TraceBuffer` sampling policy.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import context as obs_context
from repro.obs.context import (
    TraceContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    propagate,
)
from repro.obs.logs import JsonlLogger
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.prom import render_prometheus
from repro.obs.slo import SLO
from repro.obs.trace import SpanRecord, TraceBuffer


@pytest.fixture(autouse=True)
def clean_context():
    assert obs_context.current() is None
    yield
    assert obs_context.current() is None


class TestTraceContext:
    def test_activate_deactivate_roundtrip(self):
        ctx = TraceContext(trace_id=new_trace_id(), tenant="alice")
        token = obs_context.activate(ctx)
        assert obs_context.current() is ctx
        obs_context.deactivate(token)
        assert obs_context.current() is None

    def test_bind_tenant_creates_requestless_context(self):
        token = obs_context.bind_tenant("bob")
        ctx = obs_context.current()
        assert ctx is not None
        assert ctx.tenant == "bob"
        assert ctx.trace_id == ""
        obs_context.deactivate(token)

    def test_bind_tenant_preserves_trace_identity(self):
        outer = obs_context.activate(
            TraceContext(trace_id="ab" * 16, sampled=False)
        )
        inner = obs_context.bind_tenant("carol")
        ctx = obs_context.current()
        assert ctx.trace_id == "ab" * 16
        assert ctx.tenant == "carol"
        assert ctx.sampled is False
        obs_context.deactivate(inner)
        assert obs_context.current().tenant == ""
        obs_context.deactivate(outer)

    def test_ids_are_well_formed(self):
        tid, sid = new_trace_id(), new_span_id()
        assert len(tid) == 32 and int(tid, 16) != 0
        assert len(sid) == 16 and int(sid, 16) != 0


class TestTraceparent:
    def test_roundtrip(self):
        tid, sid = new_trace_id(), new_span_id()
        header = format_traceparent(tid, sid, sampled=True)
        ctx = parse_traceparent(header)
        assert ctx.trace_id == tid
        assert ctx.parent_span == sid
        assert ctx.sampled is True

    def test_unsampled_flag(self):
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=False)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-xyz-abc-01",
            f"00-{'0' * 32}-{'ab' * 8}-01",  # all-zero trace id
            f"00-{'ab' * 16}-{'0' * 16}-01",  # all-zero span id
            f"ff-{'ab' * 16}-{'cd' * 8}-01",  # forbidden version
            f"00-{'ab' * 16}-{'cd' * 8}",  # missing flags
        ],
    )
    def test_invalid_headers_are_treated_as_absent(self, bad):
        assert parse_traceparent(bad) is None

    def test_whitespace_and_case_tolerated(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16

    def test_context_renders_traceparent(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span="cd" * 8)
        assert ctx.traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"


class TestPropagate:
    def test_noop_outside_request(self):
        def fn():
            return obs_context.current()

        assert propagate(fn) is fn  # unchanged — zero-cost when unused

    def test_carries_context_into_pool_thread(self):
        ctx = TraceContext(trace_id=new_trace_id(), tenant="alice")
        token = obs_context.activate(ctx)
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                naked = pool.submit(obs_context.current).result()
                carried = pool.submit(
                    propagate(obs_context.current)
                ).result()
        finally:
            obs_context.deactivate(token)
        assert naked is None  # pools do NOT inherit context
        assert carried is not None and carried.trace_id == ctx.trace_id

    def test_no_leak_between_concurrent_requests(self):
        """Two contexts through one worker never see each other."""
        barrier = threading.Barrier(2)
        seen = {}

        def _request(name: str):
            token = obs_context.activate(
                TraceContext(trace_id=new_trace_id(), tenant=name)
            )
            try:
                def _work():
                    barrier.wait(timeout=5)
                    return obs_context.current().tenant

                with ThreadPoolExecutor(max_workers=1) as pool:
                    seen[name] = pool.submit(propagate(_work)).result()
            finally:
                obs_context.deactivate(token)

        t1 = threading.Thread(target=_request, args=("alice",))
        t2 = threading.Thread(target=_request, args=("bob",))
        t1.start(), t2.start()
        t1.join(), t2.join()
        assert seen == {"alice": "alice", "bob": "bob"}

    def test_propagated_fn_reusable_concurrently(self):
        """One wrapped fn can run on many workers at once (ctx.copy())."""
        token = obs_context.activate(
            TraceContext(trace_id=new_trace_id(), tenant="alice")
        )
        try:
            fn = propagate(lambda: obs_context.current().tenant)
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(lambda _: fn(), range(16)))
        finally:
            obs_context.deactivate(token)
        assert results == ["alice"] * 16


class TestHistogramQuantiles:
    def test_quantiles_bounded_by_buckets(self):
        hist = Histogram("t")
        for v in [0.001, 0.002, 0.004, 0.1, 0.2, 0.5, 1.0, 2.0]:
            hist.observe(v)
        p50, p95 = hist.quantile(0.5), hist.quantile(0.95)
        assert 0.002 <= p50 <= 0.2
        assert p95 <= hist.max
        assert hist.quantile(0.0) == pytest.approx(hist.min)
        assert hist.quantile(1.0) == pytest.approx(hist.max)

    def test_quantile_relative_error_within_bucket_width(self):
        """Log-spaced buckets (3/decade) bound the p-estimate error."""
        values = [0.01 * (1.01**i) for i in range(500)]
        hist = Histogram("t")
        for v in values:
            hist.observe(v)
        exact = sorted(values)[int(0.95 * (len(values) - 1))]
        est = hist.quantile(0.95)
        # One bucket spans 10^(1/3) ≈ 2.15x; the estimate must stay
        # within that factor of the exact quantile.
        assert exact / 2.2 <= est <= exact * 2.2

    def test_empty_and_invalid(self):
        hist = Histogram("t")
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_cumulative_buckets_end_at_inf_total(self):
        hist = Histogram("t")
        for v in [1e-9, 0.5, 1e9]:  # underflow + middle + overflow
            hist.observe(v)
        cumulative = hist.cumulative_buckets()
        assert cumulative[-1][0] == math.inf
        assert cumulative[-1][1] == 3
        bounds = [b for b, _ in cumulative[:-1]]
        assert bounds == sorted(bounds)
        assert tuple(bounds) == DEFAULT_BUCKETS


class TestPrometheusRendering:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("service.requests", tenant="alice").inc(3)
        reg.counter("service.requests", tenant='we"ird\\x').inc()
        reg.gauge("service.slo.burn_rate", slo="/v1/metrics").set(0.25)
        reg.histogram("service.request_seconds", route="/r").observe(0.1)
        return reg

    def test_lines_parse_under_promtool_rules(self):
        text = render_prometheus(self._registry())
        assert text.endswith("\n")
        name_re = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
        import re

        for line in text.splitlines():
            assert line, "no blank lines in exposition"
            if line.startswith("#"):
                assert re.match(
                    rf"^# (HELP|TYPE) {name_re}( .*)?$", line
                ), line
                continue
            assert re.match(
                rf"^{name_re}(\{{.*\}})? [^ ]+$", line
            ), line

    def test_histogram_family_is_complete(self):
        text = render_prometheus(self._registry())
        assert '# TYPE service_request_seconds histogram' in text
        assert 'le="+Inf"' in text
        assert "service_request_seconds_sum" in text
        assert "service_request_seconds_count" in text
        # Cumulative counts are monotone.
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("service_request_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1.0

    def test_label_values_escaped(self):
        text = render_prometheus(self._registry())
        assert 'tenant="we\\"ird\\\\x"' in text

    def test_counter_and_gauge_types_present(self):
        text = render_prometheus(self._registry())
        assert "# TYPE service_requests counter" in text
        assert "# TYPE service_slo_burn_rate gauge" in text
        assert 'service_requests{tenant="alice"} 3' in text


class TestSLO:
    def test_burn_rate_math(self):
        slo = SLO(
            "r", target_seconds=0.1, objective=0.9,
            window=10, registry=MetricsRegistry(),
        )
        assert slo.compliance == 1.0  # empty window is healthy
        for _ in range(9):
            slo.observe(0.05)
        slo.observe(0.5)  # one breach in ten
        assert slo.compliance == pytest.approx(0.9)
        assert slo.burn_rate == pytest.approx(1.0)
        assert slo.healthy

    def test_errors_count_as_bad_even_when_fast(self):
        slo = SLO(
            "r", target_seconds=1.0, objective=0.5,
            window=4, registry=MetricsRegistry(),
        )
        assert slo.observe(0.01, error=True) is False
        assert slo.compliance == 0.0
        assert not slo.healthy

    def test_window_rolls(self):
        slo = SLO(
            "r", target_seconds=0.1, objective=0.5,
            window=2, registry=MetricsRegistry(),
        )
        slo.observe(9.0)
        slo.observe(0.01)
        slo.observe(0.01)  # the breach rolled out of the window
        assert slo.compliance == 1.0
        assert slo.snapshot()["total_breaches"] == 1

    def test_gauges_published(self):
        reg = MetricsRegistry()
        slo = SLO("/r", target_seconds=0.5, registry=reg)
        slo.observe(0.1)
        assert reg.value("service.slo.compliance", slo="/r") == 1.0
        assert reg.value("service.slo.target_seconds", slo="/r") == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("r", target_seconds=0.0, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            SLO(
                "r", target_seconds=1.0, objective=1.0,
                registry=MetricsRegistry(),
            )


class TestJsonlLogger:
    def test_stamps_active_trace_context(self):
        log = JsonlLogger()
        token = obs_context.activate(
            TraceContext(trace_id="ab" * 16, tenant="alice")
        )
        try:
            rec = log.log("unit.test", value=1)
        finally:
            obs_context.deactivate(token)
        assert rec["trace_id"] == "ab" * 16
        assert rec["tenant"] == "alice"
        assert log.for_trace("ab" * 16) == [rec]

    def test_explicit_fields_win_over_context(self):
        log = JsonlLogger()
        token = obs_context.activate(TraceContext(trace_id="ab" * 16))
        try:
            rec = log.log("unit.test", trace_id="cd" * 16)
        finally:
            obs_context.deactivate(token)
        assert rec["trace_id"] == "cd" * 16

    def test_file_append_and_ring(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"
        log = JsonlLogger(path, capacity=2)
        for i in range(3):
            log.access(
                method="GET", path=f"/{i}", status=200, wall_seconds=0.01
            )
        log.close()
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert len(lines) == 3  # the file keeps everything
        assert len(log) == 2  # the ring is bounded
        assert lines[0]["event"] == "service.request"

    def test_access_level_tracks_status(self):
        log = JsonlLogger()
        ok = log.access(method="GET", path="/", status=200, wall_seconds=0.0)
        bad = log.access(method="GET", path="/", status=503, wall_seconds=0.0)
        assert ok["level"] == "info"
        assert bad["level"] == "error"
        assert log.tail(10, event="service.request") == [ok, bad]


class TestTraceBufferSampling:
    def _span(self, trace_id: str) -> SpanRecord:
        return SpanRecord(
            name="s", category="c", span_id=1, parent_id=None,
            thread="t", wall_start=0.0, wall_end=0.1, trace_id=trace_id,
        )

    def test_errors_always_kept_at_zero_sample_rate(self):
        buf = TraceBuffer(8, sample_rate=0.0)
        buf.on_span(self._span("ab" * 16))
        kept = buf.finish("ab" * 16, status=500, wall_seconds=0.01)
        assert kept is not None and kept.kept == "error"
        assert len(kept.spans) == 1

    def test_slow_always_kept_at_zero_sample_rate(self):
        buf = TraceBuffer(8, sample_rate=0.0, slow_seconds=0.5)
        kept = buf.finish("cd" * 16, status=200, wall_seconds=0.75)
        assert kept is not None and kept.kept == "slow"

    def test_fast_success_dropped_at_zero_sample_rate(self):
        buf = TraceBuffer(8, sample_rate=0.0)
        assert buf.finish("ab" * 16, status=200, wall_seconds=0.01) is None
        assert buf.stats()["dropped"] == 1

    def test_head_decision_is_deterministic_hash(self):
        buf = TraceBuffer(8, sample_rate=0.5)
        low = "00000001" + "ab" * 12  # hashes under 0.5
        high = "ffffffff" + "ab" * 12  # hashes over 0.5
        assert buf.head_decision(low) is True
        assert buf.head_decision(high) is False

    def test_upstream_sampled_flag_overrides_hash(self):
        buf = TraceBuffer(8, sample_rate=0.0)
        kept = buf.finish(
            "ab" * 16, status=200, wall_seconds=0.01, sampled=True
        )
        assert kept is not None and kept.kept == "sampled"

    def test_ring_evicts_oldest(self):
        buf = TraceBuffer(2, sample_rate=1.0)
        ids = [f"{i:08x}" + "ab" * 12 for i in range(3)]
        for tid in ids:
            buf.finish(tid, status=200, wall_seconds=0.01)
        assert buf.get(ids[0]) is None
        assert buf.get(ids[1]) is not None
        assert [t.trace_id for t in buf.list()] == [ids[2], ids[1]]
