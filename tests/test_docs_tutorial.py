"""Execute the tutorial's code blocks so the docs cannot rot.

docs/TUTORIAL.md promises every snippet is runnable when appended into
one script; this test does exactly that (with the storage root pointed
at a temp directory and the shell section skipped).
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, re.S)


@pytest.mark.slow
def test_tutorial_snippets_run(tmp_path):
    text = TUTORIAL.read_text(encoding="utf-8")
    blocks = extract_python_blocks(text)
    assert len(blocks) >= 6
    script = "\n".join(blocks)
    # Point the demo storage at the test's temp dir; shrink the mesh and
    # the campaign so the doc test stays fast.
    script = script.replace('"/tmp/canopus-demo"', f'"{tmp_path}"')
    script = script.replace("make_xgc1(scale=0.5)", "make_xgc1(scale=0.2)")
    script = script.replace("evo.steps(10)", "evo.steps(3)")
    namespace: dict = {}
    exec(compile(script, str(TUTORIAL), "exec"), namespace)  # noqa: S102
    # Spot-check that the walkthrough actually produced analytics output.
    assert namespace["blobs"] is not None
    assert namespace["prof"].peak_radius() > 0
    assert namespace["reader"].steps == [0, 1, 2]


def test_tutorial_mentions_every_example(tmp_path):
    text = TUTORIAL.read_text(encoding="utf-8")
    assert "examples/quickstart.py" in text
    assert "examples/fusion_blob_exploration.py" in text
