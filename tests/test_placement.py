"""Tests for the cost-based placement engine and plan-driven re-tiering."""

import threading

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.errors import CapacityError
from repro.io import BPDataset
from repro.mesh.generators import annulus
from repro.storage import (
    PlacementEngine,
    ProductSpec,
    SimClock,
    StorageHierarchy,
    StorageTier,
    default_weight,
    two_tier_titan,
)
from repro.storage.backend import MemoryBackend
from repro.storage.policy import TierManager


def _hierarchy(fast_cap=1000, mid_cap=5000, slow_cap=10**6):
    clock = SimClock()
    return StorageHierarchy(
        [
            StorageTier(
                "fast", "dram_tmpfs", fast_cap, clock=clock,
                backend=MemoryBackend(),
            ),
            StorageTier(
                "mid", "ssd", mid_cap, clock=clock, backend=MemoryBackend()
            ),
            StorageTier(
                "slow", "lustre", slow_cap, clock=clock,
                backend=MemoryBackend(),
            ),
        ]
    )


class TestDefaultWeight:
    def test_base_hottest(self):
        assert default_weight("base") > default_weight("delta", 2)

    def test_coarser_deltas_hotter(self):
        # Level L-1 (coarsest refinement step) outweighs level 0 (finest).
        assert default_weight("delta", 3) > default_weight("delta", 0)
        assert default_weight("mesh", 2) == default_weight("delta", 2)

    def test_unknown_kind_neutral(self):
        assert default_weight("index") == 1.0
        assert default_weight("delta", -5) == 1.0


class TestPlacementEngine:
    def test_everything_fits_fast(self):
        h = _hierarchy()
        plan = PlacementEngine(h).plan(
            [ProductSpec("a", 400), ProductSpec("b", 500)]
        )
        assert plan.tier_of("a") == "fast"
        assert plan.tier_of("b") == "fast"
        assert plan.moves() == []

    def test_hot_product_wins_scarce_fast_bytes(self):
        h = _hierarchy(fast_cap=1000)
        plan = PlacementEngine(h).plan(
            [
                ProductSpec("cold", 800, weight=1.0),
                ProductSpec("hot", 800, weight=10.0),
            ]
        )
        assert plan.tier_of("hot") == "fast"
        assert plan.tier_of("cold") == "mid"  # bypass, next-fastest

    def test_skip_note_records_capacity_bypass(self):
        h = _hierarchy(fast_cap=100)
        plan = PlacementEngine(h).plan([ProductSpec("big", 500)])
        (decision,) = plan.decisions
        notes = {tier: note for tier, _, note in decision.considered}
        assert "insufficient capacity" in notes["fast"]
        assert decision.tier == "mid"

    def test_capacity_error_when_nothing_fits(self):
        h = _hierarchy(fast_cap=10, mid_cap=10, slow_cap=10)
        with pytest.raises(CapacityError):
            PlacementEngine(h).plan([ProductSpec("huge", 10**9)])

    def test_migration_penalty_keeps_cold_in_place(self):
        h = _hierarchy()
        h.place("a.bin", b"x" * 800, preferred_index=2)
        engine = PlacementEngine(h)
        plan = engine.plan(
            [ProductSpec("a.bin", 800, weight=1.0, current_tier="slow")]
        )
        assert plan.tier_of("a.bin") == "slow"
        assert plan.moves() == []
        assert "stays" in plan.decisions[0].reason

    def test_hot_product_moves_despite_penalty(self):
        h = _hierarchy()
        h.place("a.bin", b"x" * 800, preferred_index=2)
        plan = PlacementEngine(h).plan(
            [ProductSpec("a.bin", 800, weight=5.0, current_tier="slow")]
        )
        assert plan.tier_of("a.bin") == "fast"
        assert plan.moves() == [("a.bin", "slow", "fast")]
        assert "pays for itself" in plan.decisions[0].reason

    def test_explicit_capacity_budgets(self):
        h = _hierarchy()
        plan = PlacementEngine(h).plan(
            [ProductSpec("a", 400)], capacities={"fast": 0, "mid": 1000}
        )
        assert plan.tier_of("a") == "mid"

    def test_replaced_products_free_their_own_bytes(self):
        # A fast tier already full of the product being re-placed still
        # counts as available capacity for it.
        h = _hierarchy(fast_cap=1000)
        h.place("a.bin", b"x" * 900)
        plan = PlacementEngine(h).plan(
            [ProductSpec("a.bin", 900, weight=3.0, current_tier="fast")]
        )
        assert plan.tier_of("a.bin") == "fast"

    def test_deterministic_tie_break_by_key(self):
        h = _hierarchy(fast_cap=800)
        products = [
            ProductSpec("b", 800, weight=2.0),
            ProductSpec("a", 800, weight=2.0),
        ]
        plan = PlacementEngine(h).plan(products)
        plan2 = PlacementEngine(h).plan(list(reversed(products)))
        assert plan.tier_of("a") == plan2.tier_of("a") == "fast"
        assert plan.tier_of("b") == plan2.tier_of("b") == "mid"

    def test_plan_replacement_noop_when_unread(self):
        h = _hierarchy()
        h.place("a.bin", b"x" * 500)
        h.place("b.bin", b"y" * 700, preferred_index=2)
        mgr = TierManager(h)
        plan = PlacementEngine(h).plan_replacement(mgr.tracker)
        assert plan.moves() == []


class TestPlacementPlan:
    def _plan(self):
        h = _hierarchy()
        return PlacementEngine(h).plan(
            [
                ProductSpec("a", 400, weight=2.0),
                ProductSpec("b", 300, weight=1.0, current_tier="slow"),
            ]
        )

    def test_explain_mentions_every_product(self):
        text = self._plan().explain()
        assert "a: 400 B" in text
        assert "b: 300 B" in text
        assert "expected weighted read time" in text

    def test_to_dict_round_trips_decisions(self):
        d = self._plan().to_dict()
        assert {x["key"] for x in d["decisions"]} == {"a", "b"}
        assert d["est_read_seconds"] > 0

    def test_by_tier_groups(self):
        groups = self._plan().by_tier()
        assert sorted(k for keys in groups.values() for k in keys) == ["a", "b"]

    def test_tier_of_unknown_key(self):
        with pytest.raises(KeyError):
            self._plan().tier_of("ghost")

    def test_est_read_seconds_sums(self):
        plan = self._plan()
        assert plan.est_read_seconds == pytest.approx(
            sum(d.est_seconds for d in plan.decisions)
        )


class TestTierManagerPlans:
    def test_plan_rebalance_is_pure(self):
        h = _hierarchy()
        mgr = TierManager(h, high_water=0.8, low_water=0.5)
        h.place("a", b"x" * 450)
        h.place("b", b"y" * 450)
        plan = mgr.plan_rebalance()
        assert plan.moves()  # over high-water: demotions planned...
        assert h.locate("a").name == "fast"  # ...but nothing moved yet
        assert h.locate("b").name == "fast"

    def test_plan_promotions_respects_high_water(self):
        # A 900-byte file fits the 1000-byte fast tier but would cross
        # the 0.8 high-water mark — promoting it would trigger the very
        # eviction that undoes the promotion (watermark thrash).
        h = _hierarchy(fast_cap=1000)
        mgr = TierManager(h, high_water=0.8, low_water=0.5)
        h.place("hot", b"x" * 900, preferred_index=1)
        for _ in range(5):
            mgr.read("hot")
        assert mgr.plan_promotions().decisions == []
        assert mgr.promote_hot() == []

    def test_promote_then_rebalance_is_stable(self):
        h = _hierarchy(fast_cap=1000)
        mgr = TierManager(h, high_water=0.8, low_water=0.5)
        h.place("hot", b"x" * 700, preferred_index=1)
        for _ in range(5):
            mgr.read("hot")
        assert mgr.promote_hot() == [("hot", "mid", "fast")]
        # No ping-pong: the promoted file sits below high-water, so
        # further policy passes are no-ops.
        for _ in range(3):
            assert mgr.rebalance() == []
            assert mgr.promote_hot() == []
        assert h.locate("hot").name == "fast"

    def test_replan_promotes_hot_demotes_cold(self):
        h = _hierarchy(fast_cap=1000)
        mgr = TierManager(h, high_water=0.9, low_water=0.5)
        h.place("cold", b"c" * 800)  # hogs the fast tier, never read
        h.place("hot", b"h" * 700, preferred_index=2)
        for _ in range(6):
            mgr.read("hot")
        moves = mgr.replan()
        assert ("hot", "slow", "fast") in moves
        assert h.locate("hot").name == "fast"
        assert h.locate("cold").name != "fast"
        # Demotions freed the fast bytes before the promotion claimed
        # them: the combined footprint never fit both files.
        idx_cold = next(i for i, m in enumerate(moves) if m[0] == "cold")
        assert idx_cold < moves.index(("hot", "slow", "fast"))

    def test_replan_noop_when_placement_matches_demand(self):
        h = _hierarchy()
        mgr = TierManager(h)
        h.place("hot", b"x" * 400)
        h.place("cold", b"y" * 900_000, preferred_index=2)
        for _ in range(4):
            mgr.read("hot")
        assert mgr.replan() == []
        assert mgr.replan() == []


class TestCostPlacementDataset:
    @pytest.fixture
    def mesh_field(self):
        mesh = annulus(12, 40)
        v = mesh.vertices
        return mesh, np.sin(3 * v[:, 0]) * v[:, 1]

    def test_cost_placement_bit_identical_to_walk(self, tmp_path, mesh_field):
        mesh, field = mesh_field
        restored = {}
        for policy in ("walk", "cost"):
            h = two_tier_titan(
                tmp_path / policy, fast_capacity=8 << 20,
                slow_capacity=1 << 33,
            )
            enc = CanopusEncoder(
                h, codec="zfp", codec_params={"tolerance": 1e-4},
                placement=policy,
            )
            enc.encode("run", "dpot", mesh, field, LevelScheme(2))
            from repro.core import CanopusDecoder

            restored[policy] = CanopusDecoder(
                BPDataset.open("run", h)
            ).restore_to("dpot", 0).field
        np.testing.assert_array_equal(restored["walk"], restored["cost"])

    def test_cost_placement_records_plan(self, tmp_path, mesh_field):
        mesh, field = mesh_field
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20)
        ds = BPDataset.create("run", h, placement="cost")
        ds.write("run.k", b"x" * 100, kind="base")
        ds.close()
        assert ds.last_plan is not None
        assert ds.last_plan.decisions[0].weight == default_weight("base")

    def test_cost_placement_prefers_hot_products_under_pressure(
        self, tmp_path
    ):
        # After the 16 KiB footer slack, the fast tier holds only one of
        # the two 8000-byte products: the heavier one must win it.
        h = two_tier_titan(tmp_path, fast_capacity=(16 << 10) + 9000)
        ds = BPDataset.create("run", h, placement="cost")
        ds.write("run.cold", b"c" * 8000, weight=1.0)
        ds.write("run.hot", b"h" * 8000, weight=9.0)
        ds.close()
        assert ds.inq("run.hot").tier == "tmpfs"
        assert ds.inq("run.cold").tier == "lustre"
        rd = BPDataset.open("run", h)
        assert rd.read("run.hot") == b"h" * 8000
        assert rd.read("run.cold") == b"c" * 8000


class TestConcurrentMigrationBitIdentity:
    def test_restores_survive_concurrent_migration(self, tmp_path):
        """Readers racing live re-placement still restore bit-identically.

        Migration deletes the source copy only after the destination is
        fully written and registered, and the retrieval engine re-locates
        and retries a range read that loses the race — so a reader thread
        hammering restores while subfiles bounce between tiers must see
        every restore bit-identical to the quiescent reference.
        """
        mesh = annulus(10, 30)
        field = np.cos(2 * mesh.vertices[:, 0])
        h = two_tier_titan(tmp_path, fast_capacity=32 << 20)
        enc = CanopusEncoder(h, codec="zfp", codec_params={"tolerance": 1e-3})
        enc.encode("run", "dpot", mesh, field, LevelScheme(2))

        from repro.core import CanopusDecoder

        ds = BPDataset.open("run", h, cache_bytes=0)
        reference = CanopusDecoder(ds).restore_to("dpot", 0).field
        subfiles = sorted({ds.inq(k).subfile for k in ds.keys()})
        assert subfiles

        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                try:
                    got = CanopusDecoder(ds).restore_to("dpot", 0).field
                except Exception as exc:  # noqa: BLE001 — surfaced below
                    failures.append(f"restore raised: {exc!r}")
                    return
                if not np.array_equal(got, reference):
                    failures.append("restore diverged from reference")
                    return

        t = threading.Thread(target=reader)
        t.start()
        try:
            for round_ in range(25):
                dst = "lustre" if round_ % 2 == 0 else "tmpfs"
                for sub in subfiles:
                    h.migrate(sub, dst)
        finally:
            stop.set()
            t.join()
        assert not failures, failures
        # One final quiescent restore after all the churn.
        final = CanopusDecoder(ds).restore_to("dpot", 0).field
        np.testing.assert_array_equal(final, reference)
