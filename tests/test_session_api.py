"""Tests for the Session/CampaignHandle API, deprecation shims, error
taxonomy, and content-keyed restored-cache sharing across handles."""

import warnings

import numpy as np
import pytest

import repro.errors as errors_mod
from repro.api import Session, open_dataset, read_progressive
from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import (
    dataset_fingerprint,
    get_geometry_cache,
    get_restored_cache,
)
from repro.deprecation import reset_warnings
from repro.errors import (
    HTTP_STATUS,
    AuthError,
    ConflictError,
    QuotaError,
    ReproError,
    RestorationError,
    ServiceError,
    VariableNotFoundError,
    error_code,
    http_status,
)
from repro.io import BPDataset
from repro.mesh.generators import annulus
from repro.storage import two_tier_titan

TOL = 1e-5


@pytest.fixture(autouse=True)
def _fresh_caches():
    get_restored_cache().clear()
    get_geometry_cache().clear()
    yield
    get_restored_cache().clear()
    get_geometry_cache().clear()


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    mesh = annulus(30, 90)
    v = mesh.vertices
    fields = {
        "dpot": np.sin(2 * v[:, 0]) * np.cos(2 * v[:, 1]),
        "apar": np.cos(3 * v[:, 0]) + 0.2 * np.sin(5 * v[:, 1]),
    }
    path = tmp_path_factory.mktemp("sess")
    h = two_tier_titan(path, fast_capacity=16 << 20, slow_capacity=1 << 34)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=4,
    )
    ds = BPDataset.create("camp", h)
    for var, f in fields.items():
        enc.encode("camp", var, mesh, f, LevelScheme(3), dataset=ds,
                   close=False)
    ds.close()
    return path, fields


def _hier(path):
    return two_tier_titan(path, fast_capacity=16 << 20,
                          slow_capacity=1 << 34)


class TestSessionSurface:
    def test_open_caches_handle(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            first = s.open("camp")
            assert s.open("camp") is first
            assert s.campaigns == ["camp"]

    def test_restore_by_level_and_default(self, root):
        path, fields = root
        with Session(_hier(path)) as s:
            camp = s.open("camp")
            full = camp.restore("dpot")
            assert full.level == 0
            assert np.allclose(full.field, fields["dpot"], atol=1e-3)
            coarse = camp.restore("dpot", level=2)
            assert coarse.level == 2

    def test_restore_by_tolerance(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            state = s.open("camp").restore("apar", tolerance=1e-3)
            assert state.last_delta_rms <= 1e-3 or state.level == 0

    def test_level_and_tolerance_rejected(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            with pytest.raises(RestorationError):
                s.open("camp").restore("dpot", level=1, tolerance=1e-3)

    def test_keyword_only_entry_points(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            camp = s.open("camp")
            with pytest.raises(TypeError):
                camp.restore("dpot", 1)  # level must be keyword
            with pytest.raises(TypeError):
                camp.restore_many(["dpot"], 1)
            with pytest.raises(TypeError):
                camp.read_raw("dpot/L2", 0)

    def test_unknown_variable_not_found(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            with pytest.raises(VariableNotFoundError):
                s.open("camp").restore("ghost", level=0)

    def test_restore_many_matches_restore(self, root):
        path, _ = root
        with Session(_hier(path), workers=2) as s:
            camp = s.open("camp")
            single = {v: camp.restore(v, level=1) for v in ["dpot", "apar"]}
            many = camp.restore_many(["dpot", "apar"], level=1)
            for var in single:
                assert np.array_equal(many[var].field, single[var].field)

    def test_stats_rows(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            rows = s.open("camp").stats("dpot")
            assert rows
            assert all(r["key"].split("/")[0] == "dpot" for r in rows)
            only_l1 = s.open("camp").stats("dpot", level=1)
            assert all(r["level"] == 1 for r in only_l1)

    def test_read_raw_ranges(self, root):
        path, _ = root
        with Session(_hier(path)) as s:
            camp = s.open("camp")
            full = camp.read_raw("dpot/L2")
            assert camp.read_raw("dpot/L2", start=3, length=5) == full[3:8]
            with pytest.raises(RestorationError):
                camp.read_raw("dpot/L2", start=-1)
            with pytest.raises(RestorationError):
                camp.read_raw("dpot/L2", start=0, length=-2)

    def test_closed_session_rejects_open(self, root):
        path, _ = root
        s = Session(_hier(path))
        s.close()
        with pytest.raises(RestorationError):
            s.open("camp")


class TestDeprecationShims:
    def test_open_dataset_read_mode_warns_once(self, root):
        path, _ = root
        reset_warnings()
        h = _hier(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            open_dataset("camp", h).close()
            open_dataset("camp", h).close()
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "Session" in str(dep[0].message)

    def test_read_progressive_warns_and_still_works(self, root):
        path, fields = root
        reset_warnings()
        h = _hier(path)
        ds = open_dataset("camp", h)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reader = read_progressive(ds, "dpot")
            state = reader.refine_until(rms_tolerance=0.0, max_level=0)
        assert np.allclose(state.field, fields["dpot"], atol=1e-3)
        ds.close()
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1

    def test_write_mode_does_not_warn(self, tmp_path):
        reset_warnings()
        h = two_tier_titan(tmp_path / "w")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            open_dataset("fresh", h, mode="w").close()
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert dep == []


class TestErrorTaxonomy:
    def test_every_repro_error_has_code(self):
        seen = set()
        for name in dir(errors_mod):
            obj = getattr(errors_mod, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, ReproError)
            ):
                assert isinstance(obj.code, str) and obj.code, name
                seen.add(obj.code)
        assert "not-found" in seen and "quota-exceeded" in seen

    def test_codes_translate_to_http(self):
        assert http_status(RestorationError("x")) == 400
        assert http_status(AuthError("x")) == 401
        assert http_status(VariableNotFoundError("x")) == 404
        assert http_status(ConflictError("x")) == 409
        assert http_status(QuotaError("x")) == 429
        assert http_status(ServiceError("x")) == 503
        assert http_status(ReproError("x")) == 500
        assert http_status(ValueError("x")) == 500

    def test_error_code_fallback(self):
        assert error_code(ValueError("x")) == "internal"
        assert error_code(QuotaError("x")) == "quota-exceeded"

    def test_status_map_values_are_valid(self):
        assert set(HTTP_STATUS.values()) <= {400, 401, 404, 409, 429, 500, 503}

    def test_quota_error_carries_retry_after(self):
        err = QuotaError("slow down", retry_after=2.5)
        assert err.retry_after == 2.5
        assert isinstance(err, ReproError)


class TestContentKeyedCache:
    def test_cross_handle_cache_hit(self, root):
        """Two independent handles over the same bytes share entries."""
        path, _ = root
        cache = get_restored_cache()
        with Session(_hier(path)) as s1:
            s1.open("camp").restore("dpot", level=1)
        hits_before = cache.stats()["hits"]
        with Session(_hier(path)) as s2:  # brand-new dataset handle
            s2.open("camp").restore("dpot", level=1)
        assert cache.stats()["hits"] > hits_before

    def test_key_for_accepts_fingerprint_string(self, root):
        path, _ = root
        cache = get_restored_cache()
        h = _hier(path)
        ds = BPDataset.open("camp", h)
        fp = dataset_fingerprint(ds)
        by_dataset = cache.key_for(ds, "dpot", 1)
        by_string = cache.key_for(fp, "dpot", 1)
        assert by_dataset == by_string
        ds.close()

    def test_key_normalizes_filter_state(self, root):
        path, _ = root
        cache = get_restored_cache()
        h = _hier(path)
        ds = BPDataset.open("camp", h)
        a = cache.key_for(
            ds, "dpot", 0,
            region=(np.array([0.0, -0.0]), np.array([1, 2])),
            min_significance=0,
        )
        b = cache.key_for(
            ds, "dpot", 0,
            region=(np.array([-0.0, 0.0]), np.array([1.0, 2.0])),
            min_significance=-0.0,
        )
        assert a == b
        ds.close()

    def test_key_excludes_handle_identity(self, root):
        """Same content, different engine config -> identical keys."""
        path, _ = root
        cache = get_restored_cache()
        h = _hier(path)
        ds1 = BPDataset.open("camp", h, workers=1, cache_bytes=0)
        ds2 = BPDataset.open("camp", h, workers=8)
        assert cache.key_for(ds1, "apar", 2) == cache.key_for(ds2, "apar", 2)
        ds1.close()
        ds2.close()

    def test_engine_fingerprint_snapshot(self, root):
        from repro.core.decode_engine import DecodeEngine

        path, _ = root
        h = _hier(path)
        ds = BPDataset.open("camp", h)
        engine = DecodeEngine(ds, workers=1)
        assert engine.fingerprint == dataset_fingerprint(ds)
        ds.close()
