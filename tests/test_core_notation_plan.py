"""Tests for level notation, schemes, and placement planning."""

import pytest

from repro.core import LevelScheme, plan_placement
from repro.core.notation import (
    chunk_key,
    delta_key,
    level_key,
    mapping_key,
    mesh_key,
)
from repro.errors import CanopusError


class TestKeys:
    def test_key_formats(self):
        assert level_key("dpot", 2) == "dpot/L2"
        assert delta_key("dpot", 1) == "dpot/delta1-2"
        assert delta_key("dpot", 0) == "dpot/delta0-1"
        assert mapping_key("dpot", 0) == "dpot/mapping0"
        assert mesh_key("dpot", 2) == "dpot/mesh2"
        assert chunk_key("dpot", 0, 3) == "dpot/delta0-1/chunk3"


class TestLevelScheme:
    def test_basic(self):
        s = LevelScheme(3)
        assert s.base_level == 2
        assert list(s.levels()) == [0, 1, 2]
        assert list(s.delta_levels()) == [0, 1]

    def test_decimation_ratios(self):
        s = LevelScheme(4, step_ratio=2.0)
        assert s.decimation_ratio(0) == 1.0
        assert s.decimation_ratio(3) == 8.0

    def test_restore_path(self):
        s = LevelScheme(3)
        assert s.restore_path(0) == [1, 0]
        assert s.restore_path(1) == [1]
        assert s.restore_path(2) == []

    def test_single_level(self):
        s = LevelScheme(1)
        assert s.base_level == 0
        assert list(s.delta_levels()) == []
        assert s.restore_path(0) == []

    def test_validation(self):
        with pytest.raises(CanopusError):
            LevelScheme(0)
        with pytest.raises(CanopusError):
            LevelScheme(3, step_ratio=1.0)
        with pytest.raises(CanopusError):
            LevelScheme(3).validate_level(3)
        with pytest.raises(CanopusError):
            LevelScheme(3).validate_level(-1)


class TestPlacementPlan:
    def test_paper_example_three_levels_three_tiers(self):
        """Fig. 1: base → ST2 (fastest), delta1-2 → ST1, delta0-1 → ST0."""
        plan = plan_placement(LevelScheme(3), num_tiers=3)
        assert plan.base_tier == 0
        assert plan.preferred_tier_for_delta(1) == 1
        assert plan.preferred_tier_for_delta(0) == 2

    def test_more_levels_than_tiers_clamps(self):
        plan = plan_placement(LevelScheme(5), num_tiers=2)
        assert plan.base_tier == 0
        # All deltas clamp to the slowest tier.
        for lvl in range(4):
            assert plan.preferred_tier_for_delta(lvl) == 1

    def test_single_tier(self):
        plan = plan_placement(LevelScheme(3), num_tiers=1)
        assert plan.base_tier == 0
        assert plan.preferred_tier_for_delta(0) == 0
        assert plan.preferred_tier_for_delta(1) == 0

    def test_coarser_deltas_on_faster_tiers(self):
        plan = plan_placement(LevelScheme(4), num_tiers=4)
        tiers = [plan.preferred_tier_for_delta(lvl) for lvl in range(3)]
        # Finer level (smaller l) → slower tier (larger index).
        assert tiers == sorted(tiers, reverse=True)
