"""Tests for the dataset API, transports, and XML configuration."""

import pytest

from repro.errors import (
    BPFormatError,
    ConfigError,
    StorageError,
    TransportError,
    VariableNotFoundError,
)
from repro.io import (
    AggregatingTransport,
    BPDataset,
    PosixTransport,
    StagingTransport,
    make_transport,
    parse_config,
    parse_size,
)
from repro.storage import SimClock, StorageHierarchy, StorageTier


@pytest.fixture
def hierarchy(tmp_path):
    clock = SimClock()
    return StorageHierarchy(
        [
            StorageTier("fast", "dram_tmpfs", 200_000, tmp_path / "fast", clock),
            StorageTier("slow", "lustre", 10**9, tmp_path / "slow", clock),
        ]
    )


class TestBPDataset:
    def test_write_read_roundtrip(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        ds.write("dpot/L2", b"base-bytes", kind="base", level=2, codec="zfp")
        ds.write("dpot/delta1-2", b"delta-bytes", kind="delta", level=1,
                 preferred_tier=1)
        ds.close()

        rd = BPDataset.open("run", hierarchy)
        assert rd.keys() == ["dpot/L2", "dpot/delta1-2"]
        assert rd.read("dpot/L2") == b"base-bytes"
        assert rd.read("dpot/delta1-2") == b"delta-bytes"
        assert rd.inq("dpot/L2").tier == "fast"
        assert rd.inq("dpot/delta1-2").tier == "slow"

    def test_read_charges_only_variable_bytes(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        ds.write("small", b"x" * 10)
        ds.write("large", b"y" * 100_000, preferred_tier=1)
        ds.close()
        rd = BPDataset.open("run", hierarchy)
        before = hierarchy.clock.bytes_moved(op="read")
        rd.read("small")
        moved = hierarchy.clock.bytes_moved(op="read") - before
        assert moved == 10

    def test_capacity_bypass_on_write(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        rec = ds.write("big", b"z" * 500_000)  # larger than the fast tier
        assert rec.tier == "slow"

    def test_nothing_fits(self, tmp_path):
        h = StorageHierarchy([StorageTier("only", "ssd", 64, tmp_path)])
        ds = BPDataset.create("run", h)
        with pytest.raises(StorageError):
            ds.write("big", b"x" * 100_000)

    def test_write_after_close_rejected(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        ds.close()
        with pytest.raises(BPFormatError):
            ds.write("a", b"1")

    def test_write_on_read_handle_rejected(self, hierarchy):
        BPDataset.create("run", hierarchy).close()
        rd = BPDataset.open("run", hierarchy)
        with pytest.raises(BPFormatError):
            rd.write("a", b"1")

    def test_bad_mode(self, hierarchy):
        with pytest.raises(BPFormatError):
            BPDataset("run", hierarchy, mode="x")

    def test_missing_variable(self, hierarchy):
        BPDataset.create("run", hierarchy).close()
        rd = BPDataset.open("run", hierarchy)
        with pytest.raises(VariableNotFoundError):
            rd.read("ghost")

    def test_select_by_kind(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        ds.write("dpot/L2", b"b", kind="base", level=2)
        ds.write("dpot/delta1-2", b"d", kind="delta", level=1)
        ds.close()
        rd = BPDataset.open("run", hierarchy)
        assert [r.key for r in rd.select(kind="base")] == ["dpot/L2"]

    def test_context_manager(self, hierarchy):
        with BPDataset.create("run", hierarchy) as ds:
            ds.write("a", b"1")
        rd = BPDataset.open("run", hierarchy)
        assert rd.read("a") == b"1"

    def test_catalog_attrs_roundtrip(self, hierarchy):
        ds = BPDataset.create("run", hierarchy)
        ds.catalog.attrs["levels"] = 3
        ds.write("a", b"1")
        ds.close()
        rd = BPDataset.open("run", hierarchy)
        assert rd.catalog.attrs["levels"] == 3

    def test_two_datasets_coexist(self, hierarchy):
        with BPDataset.create("run1", hierarchy) as d1:
            d1.write("a", b"1")
        with BPDataset.create("run2", hierarchy) as d2:
            d2.write("a", b"2")
        assert BPDataset.open("run1", hierarchy).read("a") == b"1"
        assert BPDataset.open("run2", hierarchy).read("a") == b"2"


class TestTransports:
    def test_posix_roundtrip(self, hierarchy):
        tr = PosixTransport(hierarchy.tier("fast"))
        tr.write("f.bin", b"abc")
        assert tr.read("f.bin") == b"abc"
        assert tr.read_range("f.bin", 1, 2) == b"bc"

    def test_aggregating_validation(self, hierarchy):
        tier = hierarchy.tier("slow")
        with pytest.raises(TransportError):
            AggregatingTransport(tier, writers=0)
        with pytest.raises(TransportError):
            AggregatingTransport(tier, writers=2, aggregators=4)

    def test_aggregating_cheaper_than_posix_for_many_writers(self, tmp_path):
        """Aggregation amortizes per-op latency on high-latency tiers."""
        clock_a = SimClock()
        tier_a = StorageTier("lustre", "lustre", 10**9, tmp_path / "a", clock_a)
        AggregatingTransport(tier_a, writers=128, aggregators=4).write("x", b"d" * 1000)
        clock_p = SimClock()
        tier_p = StorageTier("lustre", "lustre", 10**9, tmp_path / "p", clock_p)
        PosixTransport(tier_p).write("x", b"d" * 1000)
        assert clock_a.elapsed < clock_p.elapsed

    def test_staging_defers_tier_write(self, hierarchy):
        tier = hierarchy.tier("slow")
        tr = StagingTransport(tier)
        tr.write("x.bin", b"staged")
        assert not tier.exists("x.bin")
        assert tr.pending == ["x.bin"]
        with pytest.raises(TransportError):
            tr.read("x.bin")
        drained = tr.drain()
        assert drained == 6
        assert tr.read("x.bin") == b"staged"

    def test_staging_write_charged_at_network_speed(self, hierarchy):
        tier = hierarchy.tier("slow")
        tr = StagingTransport(tier)
        before = tier.clock.elapsed
        tr.write("x.bin", b"s" * 10_000)
        stage_cost = tier.clock.elapsed - before
        assert stage_cost < tier.device.write_seconds(10_000)

    def test_factory(self, hierarchy):
        tier = hierarchy.tier("fast")
        assert make_transport("posix", tier).method == "POSIX"
        assert make_transport("MPI_AGGREGATE", tier, writers=4).method == "MPI_AGGREGATE"
        assert make_transport("staging", tier).method == "STAGING"
        with pytest.raises(TransportError):
            make_transport("carrier-pigeon", tier)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expect",
        [
            ("0B", 0),
            ("123", 123),
            ("1KiB", 1024),
            ("1kb", 1000),
            ("2MiB", 2 << 20),
            ("1.5GiB", int(1.5 * (1 << 30))),
            ("3TB", 3 * 10**12),
        ],
    )
    def test_valid(self, text, expect):
        assert parse_size(text) == expect

    @pytest.mark.parametrize("text", ["", "MiB", "12XB", "-5MiB"])
    def test_invalid(self, text):
        with pytest.raises(ConfigError):
            parse_size(text)


class TestXMLConfig:
    def make_xml(self, tmp_path):
        return f"""
        <canopus-config>
          <storage root="{tmp_path}">
            <tier name="tmpfs" device="dram_tmpfs" capacity="64MiB"/>
            <tier name="lustre" device="lustre" capacity="10GiB"/>
          </storage>
          <transport tier="lustre" method="MPI_AGGREGATE" writers="128" aggregators="4"/>
          <canopus levels="4" codec="sz" tolerance="1e-3" decimation="2" note="hi"/>
        </canopus-config>
        """

    def test_full_parse(self, tmp_path):
        cfg = parse_config(self.make_xml(tmp_path))
        assert cfg.hierarchy.tier_names() == ["tmpfs", "lustre"]
        assert cfg.hierarchy.tier("tmpfs").capacity_bytes == 64 << 20
        assert cfg.transport_for("lustre").method == "MPI_AGGREGATE"
        assert cfg.transport_for("tmpfs").method == "POSIX"  # default
        assert cfg.levels == 4
        assert cfg.codec == "sz"
        assert cfg.tolerance == 1e-3
        assert cfg.extra == {"note": "hi"}

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "config.xml"
        path.write_text(self.make_xml(tmp_path / "store"))
        cfg = parse_config(path)
        assert cfg.levels == 4

    def test_missing_storage(self):
        with pytest.raises(ConfigError):
            parse_config("<canopus-config></canopus-config>")

    def test_wrong_root_tag(self):
        with pytest.raises(ConfigError):
            parse_config("<nope></nope>")

    def test_invalid_xml(self):
        with pytest.raises(ConfigError):
            parse_config("<canopus-config>")

    def test_tier_missing_attrs(self, tmp_path):
        xml = f"""
        <canopus-config>
          <storage root="{tmp_path}"><tier name="a" device="ssd"/></storage>
        </canopus-config>
        """
        with pytest.raises(ConfigError):
            parse_config(xml)

    def test_no_tiers(self, tmp_path):
        xml = f'<canopus-config><storage root="{tmp_path}"></storage></canopus-config>'
        with pytest.raises(ConfigError):
            parse_config(xml)

    def test_transport_for_unknown_tier(self, tmp_path):
        cfg = parse_config(self.make_xml(tmp_path))
        with pytest.raises(ConfigError):
            cfg.transport_for("nvram")

    def test_shared_clock_injection(self, tmp_path):
        clock = SimClock()
        cfg = parse_config(self.make_xml(tmp_path), clock=clock)
        cfg.hierarchy.fastest.write("x", b"abc")
        assert clock.elapsed > 0
