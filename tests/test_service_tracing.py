"""End-to-end tests for request tracing across the service path (PR 7).

A traced :class:`CanopusService` runs on its own thread; every
assertion goes over a real socket. Covers: W3C ``traceparent``
round-trips client→service→datanode→engine into ONE span tree whose
spans run on the service, datanode-executor, and engine-pool threads;
the sampling policy always capturing 5xx and slow-tail requests even at
``sample_rate=0.0``; trace-context isolation between concurrent
requests sharing the executor; the Prometheus exposition; and exact
per-request SimClock read-seconds parity with the per-tenant counters.
"""

import asyncio
import math
import re

import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import VariableNotFoundError
from repro.io import BPDataset
from repro.obs import MetricsRegistry
from repro.obs import context as obs_context
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.service import CanopusService, ServiceClient, TenantConfig
from repro.service.loadgen import ServiceThread
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-5


def _drive(coro):
    return asyncio.run(coro)


def _hierarchy(root):
    return two_tier_titan(root, fast_capacity=64 << 20, slow_capacity=1 << 36)


@pytest.fixture(scope="module")
def campaign_root(tmp_path_factory):
    src = make_xgc1(scale=0.2)
    root = tmp_path_factory.mktemp("traced-svc")
    h = _hierarchy(root)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=4,
    )
    ds = BPDataset.create("camp", h)
    enc.encode("camp", "dpot", src.mesh, src.field, LevelScheme(3),
               dataset=ds, close=False)
    ds.close()
    return root


@pytest.fixture(scope="module")
def traced_service(campaign_root):
    """Keep-everything service: sample_rate=1.0, roomy ring."""
    get_restored_cache().clear()
    get_geometry_cache().clear()
    svc = CanopusService(
        _hierarchy(campaign_root),
        tenants=[
            TenantConfig(name="alice", token="tok-alice"),
            TenantConfig(name="bob", token="tok-bob"),
        ],
        workers=2,
        executor_workers=4,
        metrics=MetricsRegistry(),
        tracing=True,
        trace_capacity=4096,
        trace_sample_rate=1.0,
        trace_slow_seconds=3600.0,
    )
    with ServiceThread(svc):
        yield svc
    get_restored_cache().clear()
    get_geometry_cache().clear()


@pytest.fixture(scope="module")
def sampled_out_service(campaign_root):
    """Keep-nothing-by-default service: sample_rate=0.0."""
    svc = CanopusService(
        _hierarchy(campaign_root),
        tenants=[TenantConfig(name="alice", token="tok-alice")],
        workers=2,
        executor_workers=2,
        metrics=MetricsRegistry(),
        tracing=True,
        trace_capacity=64,
        trace_sample_rate=0.0,
        trace_slow_seconds=3600.0,
    )
    with ServiceThread(svc):
        yield svc


def _assert_single_span_tree(trace: dict) -> None:
    spans = trace["spans"]
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1, [s["name"] for s in roots]
    assert roots[0]["name"].startswith("http "), roots[0]["name"]
    ids = {s["span_id"] for s in spans}
    for span in spans:
        assert span["trace_id"] == trace["trace_id"]
        if span["parent_id"] is not None:
            assert span["parent_id"] in ids, span["name"]


class TestTraceparentRoundtrip:
    def test_restore_is_one_span_tree_across_thread_pools(
        self, traced_service
    ):
        svc = traced_service
        trace_id = new_trace_id()
        ctx = TraceContext(trace_id=trace_id, parent_span=new_span_id())

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                token = obs_context.activate(ctx)
                try:
                    _, meta = await c.restore("camp", "dpot", level=0)
                    request_id = c.last_request_id
                finally:
                    # Fetch the trace OUTSIDE the forwarded context —
                    # requests reusing one trace id share one ring slot.
                    obs_context.deactivate(token)
                return request_id, meta, await c.trace(trace_id)

        request_id, meta, trace = _drive(go())
        # The id we minted client-side is the id the server answered
        # under — echoed both in x-request-id and in restore meta.
        assert request_id == trace_id
        assert meta["request_id"] == trace_id
        assert trace["trace_id"] == trace_id
        assert trace["tenant"] == "alice"
        assert trace["status"] == 200
        assert trace["route"] == "/v1/campaigns/{name}/vars/{var}/restore"
        _assert_single_span_tree(trace)
        # One coherent tree spanning the datanode executor and the
        # engine's internal pools, not just the asyncio thread.
        threads = {s["thread"] for s in trace["spans"]}
        assert any(t.startswith("repro-datanode") for t in threads), threads
        assert any(
            t.startswith(("repro-io", "repro-decode", "repro-restore"))
            for t in threads
        ), threads

    def test_fresh_trace_id_minted_and_echoed_when_absent(
        self, traced_service
    ):
        svc = traced_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.open_campaign("camp")
                return c.last_request_id

        request_id = _drive(go())
        assert request_id is not None
        assert re.fullmatch(r"[0-9a-f]{32}", request_id)
        trace = _drive(self._fetch(svc, request_id))
        assert trace["route"] == "/v1/campaigns/{name}/open"
        assert trace["tenant"] == "alice"
        _assert_single_span_tree(trace)

    @staticmethod
    async def _fetch(svc, trace_id):
        async with ServiceClient(svc.host, svc.port,
                                 token="tok-alice") as c:
            return await c.trace(trace_id)

    def test_unknown_trace_id_is_404(self, traced_service):
        svc = traced_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                await c.trace("ff" * 16)

        with pytest.raises(VariableNotFoundError):
            _drive(go())


class TestContextIsolation:
    def test_concurrent_requests_keep_their_own_context(
        self, traced_service
    ):
        """Interleaved tenants on the shared executor never cross."""
        svc = traced_service
        rounds = 4

        async def tenant_run(tenant: str):
            ids = []
            async with ServiceClient(svc.host, svc.port,
                                     token=f"tok-{tenant}") as c:
                for _ in range(rounds):
                    await c.restore("camp", "dpot", level=1)
                    ids.append(c.last_request_id)
            return tenant, ids

        async def go():
            results = await asyncio.gather(
                tenant_run("alice"), tenant_run("bob")
            )
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                traces = {}
                for tenant, ids in results:
                    for tid in ids:
                        traces[tid] = (tenant, await c.trace(tid))
            return traces

        traces = _drive(go())
        assert len(traces) == 2 * rounds
        for tid, (tenant, trace) in traces.items():
            # Attribution follows the bearer token of the request that
            # minted the trace — never the concurrent neighbour's.
            assert trace["tenant"] == tenant, tid
            assert trace["status"] == 200
            _assert_single_span_tree(trace)
            assert all(s["trace_id"] == tid for s in trace["spans"])


class TestSamplingPolicy:
    @staticmethod
    def _unsampled_ctx():
        return TraceContext(
            trace_id=new_trace_id(),
            parent_span=new_span_id(),
            sampled=False,
        )

    def test_fast_success_is_dropped(self, sampled_out_service):
        svc = sampled_out_service

        async def go():
            token = obs_context.activate(self._unsampled_ctx())
            try:
                async with ServiceClient(svc.host, svc.port,
                                         token="tok-alice") as c:
                    assert await c.healthz()
                    tid = c.last_request_id
                    with pytest.raises(VariableNotFoundError):
                        await c.trace(tid)
            finally:
                obs_context.deactivate(token)

        _drive(go())

    def test_5xx_always_kept(self, sampled_out_service):
        svc = sampled_out_service
        original = svc.node._dispatch

        async def broken(request, route):
            if route == "/healthz":
                raise RuntimeError("injected datanode failure")
            return await original(request, route)

        svc.node._dispatch = broken
        try:
            async def go():
                async with ServiceClient(svc.host, svc.port,
                                         token="tok-alice") as c:
                    token = obs_context.activate(self._unsampled_ctx())
                    try:
                        resp = await c._get("/healthz")
                        assert resp.status == 500
                        failed_id = c.last_request_id
                    finally:
                        obs_context.deactivate(token)
                    return await c.trace(failed_id)

            trace = _drive(go())
        finally:
            svc.node._dispatch = original
        assert trace["kept"] == "error"
        assert trace["status"] == 500
        assert "injected datanode failure" in trace["error"]

    def test_slow_tail_always_kept(self, sampled_out_service):
        svc = sampled_out_service
        svc.trace_buffer.slow_seconds = 1e-9  # everything is "slow" now
        try:
            async def go():
                async with ServiceClient(svc.host, svc.port,
                                         token="tok-alice") as c:
                    token = obs_context.activate(self._unsampled_ctx())
                    try:
                        assert await c.healthz()
                        slow_id = c.last_request_id
                    finally:
                        obs_context.deactivate(token)
                    return await c.trace(slow_id)

            trace = _drive(go())
        finally:
            svc.trace_buffer.slow_seconds = 3600.0
        assert trace["kept"] == "slow"

    def test_upstream_sampled_flag_honored(self, sampled_out_service):
        """sampled=True from upstream overrides the 0.0 head rate."""
        svc = sampled_out_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                # The client mints sampled=True headers by default.
                assert await c.healthz()
                return await c.trace(c.last_request_id)

        trace = _drive(go())
        assert trace["kept"] == "sampled"


class TestMetricsExposition:
    def test_prometheus_lines_parse(self, traced_service):
        svc = traced_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c.metrics(format="prometheus")

        text = _drive(go())
        assert isinstance(text, str) and text.endswith("\n")
        name_re = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
        for line in text.splitlines():
            assert line, "no blank lines"
            if line.startswith("#"):
                assert re.match(rf"^# (HELP|TYPE) {name_re}( .*)?$", line)
            else:
                assert re.match(
                    rf"^{name_re}(\{{.*\}})? -?[0-9eE.+-]+$", line
                ), line
        assert "# TYPE service_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "service_slo_burn_rate" in text

    def test_json_metrics_include_slo_and_histograms(self, traced_service):
        svc = traced_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-alice") as c:
                return await c.metrics()

        payload = _drive(go())
        slo = payload["slo"]
        restore_route = "/v1/campaigns/{name}/vars/{var}/restore"
        assert restore_route in slo
        snap = slo[restore_route]
        assert 0.0 <= snap["compliance"] <= 1.0
        assert snap["window_requests"] >= 1


class TestSimReadParity:
    def test_trace_sim_read_sums_to_tenant_counters(self, traced_service):
        """Per-request SimClock charge attribution is complete: summed
        over every kept trace it reproduces the per-tenant counters
        exactly (everything is kept at sample_rate=1.0)."""
        svc = traced_service

        async def go():
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-bob") as c:
                await c.restore("camp", "dpot", level=2)
                payload = await c.traces(limit=100000)
            return payload

        payload = _drive(go())
        stats = payload["stats"]
        assert stats["dropped"] == 0
        assert stats["kept"] == stats["finished"]
        by_trace = sum(
            t["sim_read_seconds"] for t in payload["traces"]
        )
        by_tenant = sum(
            u["total_sim_read_seconds"]
            for u in svc.tenants.usage().values()
        )
        assert by_trace > 0
        assert math.isclose(by_trace, by_tenant, rel_tol=1e-6, abs_tol=1e-9)
