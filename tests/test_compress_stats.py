"""Tests for smoothness statistics (Fig. 4 support)."""

import numpy as np
import pytest

from repro.compress.stats import smoothness, smoothness_table


class TestSmoothness:
    def test_constant_signal(self):
        s = smoothness(np.full(100, 5.0))
        assert s.std == 0.0
        assert s.total_variation == 0.0
        assert s.second_diff_rms == 0.0
        assert s.value_range == 0.0

    def test_linear_signal_zero_second_diff(self):
        s = smoothness(np.linspace(0, 1, 50))
        assert s.second_diff_rms == pytest.approx(0.0, abs=1e-12)
        assert s.total_variation == pytest.approx(1.0 / 49.0)

    def test_empty_signal(self):
        s = smoothness(np.zeros(0))
        assert s.n == 0

    def test_single_value(self):
        s = smoothness(np.array([3.0]))
        assert s.n == 1
        assert s.total_variation == 0.0

    def test_rough_rougher_than_smooth(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 1000)
        smooth_sig = np.sin(x)
        rough_sig = np.sin(x) + rng.normal(0, 0.5, x.size)
        assert (
            smoothness(rough_sig).total_variation
            > smoothness(smooth_sig).total_variation
        )
        assert (
            smoothness(rough_sig).second_diff_rms
            > smoothness(smooth_sig).second_diff_rms
        )

    def test_as_dict(self):
        d = smoothness(np.array([1.0, 2.0, 3.0])).as_dict()
        assert d["n"] == 3
        assert d["mean"] == pytest.approx(2.0)

    def test_table(self):
        rows = smoothness_table({"a": np.zeros(5), "b": np.ones(5)})
        assert len(rows) == 2
        assert rows[0]["signal"] == "a"
        assert rows[1]["mean"] == 1.0
