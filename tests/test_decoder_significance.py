"""Tests for significance-pruned (bounded lossy) refinement."""

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-5
CHUNKS = 25


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    ds = make_xgc1(scale=0.3)
    h = two_tier_titan(
        tmp_path_factory.mktemp("sig"), fast_capacity=16 << 20,
        slow_capacity=1 << 34,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=CHUNKS,
    )
    enc.encode("sig", "dpot", ds.mesh, ds.field, LevelScheme(2))
    return ds, h


def _decoder(h):
    dec = CanopusDecoder(BPDataset.open("sig", h))
    dec.prefetch_geometry("dpot")
    return dec


class TestSignificancePrunedRefinement:
    def test_error_bounded_by_threshold(self, setup):
        ds, h = setup
        dec_full = _decoder(h)
        full = dec_full.refine(dec_full.read_base("dpot"))
        threshold = 0.05 * float(np.abs(ds.field).max())
        dec_sig = _decoder(h)
        pruned = dec_sig.refine(
            dec_sig.read_base("dpot"), min_significance=threshold
        )
        # Skipped chunks can move values by < threshold each.
        assert np.abs(pruned.field - full.field).max() <= threshold + 1e-12

    def test_reads_fewer_bytes(self, setup):
        ds, h = setup
        dec = _decoder(h)
        base = dec.read_base("dpot")
        before = h.clock.bytes_moved(op="read")
        dec.refine(base, min_significance=0.05 * float(np.abs(ds.field).max()))
        pruned_bytes = h.clock.bytes_moved(op="read") - before

        dec2 = _decoder(h)
        base2 = dec2.read_base("dpot")
        before = h.clock.bytes_moved(op="read")
        dec2.refine(base2)
        full_bytes = h.clock.bytes_moved(op="read") - before
        assert pruned_bytes < full_bytes

    def test_zero_threshold_reads_everything(self, setup):
        _, h = setup
        dec = _decoder(h)
        state = dec.refine(dec.read_base("dpot"), min_significance=0.0)
        assert state.refined_mask.all()

    def test_huge_threshold_skips_everything(self, setup):
        ds, h = setup
        dec = _decoder(h)
        state = dec.refine(dec.read_base("dpot"), min_significance=1e12)
        assert not state.refined_mask.any()
        # NaN, not 0.0: an empty refinement must not read as "converged"
        # (refine_until would otherwise stop spuriously).
        assert np.isnan(state.last_delta_rms)

    def test_composes_with_region(self, setup):
        ds, h = setup
        dec = _decoder(h)
        base = dec.read_base("dpot")
        center = base.mesh.vertices[int(np.argmax(base.field))]
        state = dec.refine(
            base,
            region=(center - 0.3, center + 0.3),
            min_significance=1e-6,
        )
        assert 0 <= state.refined_mask.sum() < len(state.field)
