"""Tests for the repro.api façade, deprecation shims, and API conformance."""

import importlib
import pkgutil
import warnings

import numpy as np
import pytest

import repro
import repro.api
from repro.api import (
    BPDataset,
    LevelScheme,
    open_dataset,
    read_progressive,
    write_campaign,
)
from repro.errors import BPFormatError, CanopusError
from repro.mesh.generators import annulus
from repro.storage import two_tier_titan


@pytest.fixture
def hierarchy(tmp_path):
    return two_tier_titan(tmp_path, fast_capacity=4 << 20, slow_capacity=1 << 33)


@pytest.fixture(scope="module")
def mesh_and_field():
    mesh = annulus(30, 90)
    v = mesh.vertices
    field = np.sin(2 * v[:, 0]) * np.cos(2 * v[:, 1])
    return mesh, field


class TestOpenDataset:
    def test_create_and_reopen(self, hierarchy):
        ds = open_dataset("run", hierarchy, mode="w")
        assert isinstance(ds, BPDataset)
        ds.write("k", b"payload")
        ds.close()
        rd = open_dataset("run", hierarchy)
        assert rd.read("k") == b"payload"

    def test_default_mode_is_read(self, hierarchy):
        open_dataset("x", hierarchy, mode="w").close()
        ds = open_dataset("x", hierarchy)
        assert ds.mode == "r"

    def test_bad_mode(self, hierarchy):
        with pytest.raises(BPFormatError):
            open_dataset("run", hierarchy, mode="a")

    def test_engine_knobs_forwarded(self, hierarchy):
        open_dataset("x", hierarchy, mode="w").close()
        ds = open_dataset("x", hierarchy, cache_bytes=0, workers=2)
        assert ds.engine.cache.capacity_bytes == 0


class TestWriteCampaign:
    def test_mapping_and_iterable_inputs(self, hierarchy, mesh_and_field):
        mesh, field = mesh_and_field
        steps = {0: field, 1: field * 1.1}
        reports = write_campaign(
            hierarchy, "camp", "dpot", mesh, steps, LevelScheme(2),
            codec="zfp", codec_params={"tolerance": 1e-3},
        )
        assert [r.step for r in reports] == [0, 1]

        from repro.api import CampaignReader

        reader = CampaignReader(hierarchy, "camp")
        assert reader.steps == [0, 1]
        state = reader.restore(1, 0)
        assert np.allclose(state.field, field * 1.1, atol=1e-2)

    def test_iterable_steps_enumerate(self, tmp_path, mesh_and_field):
        mesh, field = mesh_and_field
        h = two_tier_titan(tmp_path / "h")
        reports = write_campaign(
            h, "camp", "dpot", mesh, [field, field], LevelScheme(2),
            codec="zfp", codec_params={"tolerance": 1e-3},
        )
        assert [r.step for r in reports] == [0, 1]

    def test_empty_steps_rejected(self, hierarchy, mesh_and_field):
        mesh, _ = mesh_and_field
        with pytest.raises(CanopusError):
            write_campaign(hierarchy, "camp", "dpot", mesh, [], LevelScheme(2))


class TestReadProgressive:
    def test_full_refinement_matches_encoder_input(
        self, hierarchy, mesh_and_field
    ):
        mesh, field = mesh_and_field
        from repro.api import CanopusEncoder

        enc = CanopusEncoder(
            hierarchy, codec="zfp", codec_params={"tolerance": 1e-4}
        )
        enc.encode("run", "dpot", mesh, field, LevelScheme(3))
        ds = open_dataset("run", hierarchy)
        reader = read_progressive(ds, "dpot")
        assert reader.pipeline  # pipelining on by default via the façade
        state = reader.refine_until(rms_tolerance=0.0)
        assert state.level == 0
        assert np.allclose(state.field, field, atol=1e-3)
        assert ds.engine_stats().prefetch_issued > 0

    def test_accepts_decoder(self, hierarchy, mesh_and_field):
        mesh, field = mesh_and_field
        from repro.api import CanopusDecoder, CanopusEncoder

        enc = CanopusEncoder(
            hierarchy, codec="zfp", codec_params={"tolerance": 1e-3}
        )
        enc.encode("run", "dpot", mesh, field, LevelScheme(2))
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        reader = read_progressive(dec, "dpot", pipeline=False, lookahead=1)
        assert reader.decoder is dec
        assert not reader.pipeline


class TestDeprecationShims:
    def test_old_io_api_shim_is_gone(self):
        # Deprecated in PR 1, warned-once in PR 2, removed now: the
        # supported import paths are repro.api and repro.io.dataset.
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.io.api")
        from repro.api import BPDataset as facade_bpd
        from repro.io.dataset import BPDataset as module_bpd

        assert facade_bpd is module_bpd is BPDataset

    def test_old_top_level_exports_still_work(self, hierarchy):
        # Pre-façade users imported these from the package root.
        ds = repro.BPDataset.create("run", hierarchy)
        ds.close()
        assert repro.ProgressiveReader is not None
        assert repro.CanopusEncoder is not None


class TestAPIConformance:
    def test_every_facade_symbol_importable(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), f"repro.api.{name} missing"
            obj = getattr(repro.api, name)
            assert obj is not None

    def test_facade_all_sorted_within_sections(self):
        helpers = {"open_dataset", "write_campaign", "read_progressive"}
        assert helpers <= set(repro.api.__all__)

    def test_every_module_all_matches_exports(self):
        """Every ``__all__`` across src/repro names real module attributes."""
        failures = []
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                module = importlib.import_module(info.name)
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                if not hasattr(module, name):
                    failures.append(f"{info.name}.{name}")
        assert not failures, f"__all__ names without attributes: {failures}"

    def test_root_namespace_reexports_facade(self):
        assert repro.open_dataset is open_dataset
        assert repro.write_campaign is write_campaign
        assert repro.read_progressive is read_progressive
        assert "api" in repro.__all__
