"""Tests for Algorithm 1 (edge-collapse decimation) and the priority queue."""

import numpy as np
import pytest

from repro.errors import DecimationError
from repro.mesh import TriangleMesh, decimate
from repro.mesh.generators import annulus, disk, structured_rectangle
from repro.mesh.metrics import decimation_ratio
from repro.mesh.priority_queue import EdgePriorityQueue, edge_key


class TestEdgePriorityQueue:
    def test_push_pop_order(self):
        q = EdgePriorityQueue()
        q.push(0, 1, 3.0)
        q.push(1, 2, 1.0)
        q.push(2, 3, 2.0)
        assert q.pop() == ((1, 2), 1.0)
        assert q.pop() == ((2, 3), 2.0)
        assert q.pop() == ((0, 1), 3.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EdgePriorityQueue().pop()

    def test_update_priority(self):
        q = EdgePriorityQueue()
        q.push(0, 1, 5.0)
        q.push(0, 1, 0.5)  # update
        key, prio = q.pop()
        assert key == (0, 1) and prio == 0.5
        with pytest.raises(IndexError):
            q.pop()

    def test_discard(self):
        q = EdgePriorityQueue()
        q.push(0, 1, 1.0)
        q.push(1, 2, 2.0)
        q.discard(1, 0)  # order-insensitive
        assert q.pop() == ((1, 2), 2.0)

    def test_len_and_contains(self):
        q = EdgePriorityQueue()
        q.push(3, 1, 1.0)
        assert len(q) == 1
        assert (1, 3) in q
        assert (3, 1) in q
        assert (0, 1) not in q

    def test_edge_key_canonical(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_peek_does_not_remove(self):
        q = EdgePriorityQueue()
        q.push(0, 1, 1.0)
        assert q.peek() == ((0, 1), 1.0)
        assert len(q) == 1

    def test_stats_track_stale(self):
        q = EdgePriorityQueue()
        q.push(0, 1, 5.0)
        q.push(0, 1, 1.0)
        q.pop()
        with pytest.raises(IndexError):
            q.pop()  # must skip the stale (0, 1, 5.0) entry
        assert q.stats["stale_pops"] >= 1

    def test_init_from_items(self):
        q = EdgePriorityQueue([((0, 1), 2.0), ((1, 2), 1.0)])
        assert q.pop()[0] == (1, 2)


class TestDecimation:
    def test_reaches_target_ratio(self):
        mesh = disk(1000, seed=0)
        res = decimate(mesh, ratio=2)
        assert res.mesh.num_vertices == 500
        assert res.achieved_ratio == pytest.approx(2.0)

    def test_ratio_four(self):
        mesh = disk(1000, seed=0)
        res = decimate(mesh, ratio=4)
        assert res.mesh.num_vertices == 250

    def test_collapses_equal_removed_vertices(self):
        mesh = disk(600, seed=1)
        res = decimate(mesh, ratio=2)
        assert res.collapses == mesh.num_vertices - res.mesh.num_vertices

    def test_field_decimated_alongside(self):
        mesh = disk(500, seed=2)
        field = mesh.vertices[:, 0] ** 2
        res = decimate(mesh, field, ratio=2)
        out = res.fields["data"]
        assert len(out) == res.mesh.num_vertices
        # Means preserved approximately: decimated values are local averages.
        assert abs(out.mean() - field.mean()) < 0.1 * max(1e-9, abs(field.mean()) + field.std())

    def test_field_range_never_expands(self):
        # NewData is a mean, so decimated values stay inside the original range.
        mesh = disk(800, seed=3)
        field = np.sin(mesh.vertices[:, 0] * 7)
        res = decimate(mesh, field, ratio=4)
        out = res.fields["data"]
        assert out.min() >= field.min() - 1e-12
        assert out.max() <= field.max() + 1e-12

    def test_multiple_fields(self):
        mesh = disk(300, seed=4)
        fields = {"a": mesh.vertices[:, 0], "b": mesh.vertices[:, 1]}
        res = decimate(mesh, fields, ratio=2)
        assert set(res.fields) == {"a", "b"}
        assert all(len(v) == res.mesh.num_vertices for v in res.fields.values())

    def test_field_length_mismatch_raises(self):
        mesh = disk(100, seed=5)
        with pytest.raises(DecimationError):
            decimate(mesh, np.zeros(7), ratio=2)

    def test_bad_ratio_raises(self):
        mesh = disk(100, seed=5)
        with pytest.raises(DecimationError):
            decimate(mesh, ratio=0.5)

    def test_ratio_one_is_identity_size(self):
        mesh = disk(100, seed=6)
        res = decimate(mesh, ratio=1.0)
        assert res.mesh.num_vertices == mesh.num_vertices
        assert res.collapses == 0

    def test_output_mesh_valid(self):
        mesh = annulus(20, 60)
        res = decimate(mesh, ratio=2)
        out = res.mesh
        # Re-validate topology through the strict constructor.
        TriangleMesh(out.vertices, out.triangles, validate=True)
        assert (out.triangle_areas() > 0).all()

    def test_no_dangling_vertices(self):
        mesh = disk(400, seed=7)
        res = decimate(mesh, ratio=2)
        used = np.unique(res.mesh.triangles.ravel())
        assert len(used) == res.mesh.num_vertices

    def test_area_roughly_preserved(self):
        mesh = disk(2000, seed=8)
        res = decimate(mesh, ratio=2)
        assert res.mesh.total_area() == pytest.approx(mesh.total_area(), rel=0.1)

    def test_progressive_chain(self):
        """Repeated 2x decimation matches a paper-style level progression."""
        mesh = disk(1600, seed=9)
        field = np.cos(mesh.vertices[:, 0] * 5)
        meshes = [mesh]
        for _ in range(3):
            res = decimate(meshes[-1], field, ratio=2)
            field = res.fields["data"]
            meshes.append(res.mesh)
        for lvl in range(1, 4):
            d = decimation_ratio(meshes[0], meshes[lvl])
            assert d == pytest.approx(2.0**lvl, rel=0.02)

    def test_data_aware_priority(self):
        mesh = disk(500, seed=10)
        # Sharp front at x=0.
        field = np.tanh(mesh.vertices[:, 0] * 50)
        res = decimate(mesh, field, ratio=2, priority="data_aware")
        assert res.mesh.num_vertices == 250

    def test_callable_priority(self):
        mesh = disk(300, seed=11)
        calls = []

        def prio(u, v):
            calls.append((u, v))
            return float(u + v)

        res = decimate(mesh, ratio=2, priority=prio)
        assert res.mesh.num_vertices == 150
        assert calls

    def test_unknown_priority_name(self):
        mesh = disk(50, seed=12)
        with pytest.raises(DecimationError):
            decimate(mesh, ratio=2, priority="nope")

    def test_structured_mesh_decimation(self):
        mesh = structured_rectangle(30, 30)
        res = decimate(mesh, ratio=2)
        assert res.mesh.num_vertices == 450

    def test_annulus_keeps_some_hole(self):
        """Decimating an annulus should not collapse its topology to a disk."""
        mesh = annulus(30, 90)
        res = decimate(mesh, ratio=2)
        assert res.mesh.euler_characteristic() <= 1

    def test_high_ratio(self):
        mesh = disk(4096, seed=13)
        res = decimate(mesh, ratio=32)
        assert res.mesh.num_vertices == 128

    def test_queue_stats_exposed(self):
        mesh = disk(200, seed=14)
        res = decimate(mesh, ratio=2)
        assert res.queue_stats["pushes"] > 0

    def test_endpoint_placement_subsets_vertices(self):
        """Endpoint placement keeps coarse vertices at original sample
        positions with original values."""
        mesh = disk(400, seed=15)
        field = np.sin(5 * mesh.vertices[:, 0])
        res = decimate(mesh, field, ratio=2, placement="endpoint")
        # Every coarse vertex coincides with some fine vertex...
        from scipy.spatial import cKDTree

        d, idx = cKDTree(mesh.vertices).query(res.mesh.vertices)
        assert d.max() < 1e-12
        # ...and carries that vertex's exact value.
        assert np.allclose(res.fields["data"], field[idx], atol=1e-12)

    def test_unknown_placement(self):
        mesh = disk(50, seed=16)
        with pytest.raises(DecimationError):
            decimate(mesh, ratio=2, placement="centroid")
