"""Cross-module integration tests: the whole system, end to end.

Each test exercises a realistic multi-subsystem path: XML-configured
deep hierarchies, multi-variable datasets, query-then-focused-refine,
progressive blob workflows, and the byte-split alternative flowing
through the same storage layer.
"""

import numpy as np
import pytest

from repro.analytics import (
    BlobDetectorParams,
    RasterSpec,
    cross_level_errors,
    detect_blobs,
    rasterize,
)
from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    ProgressiveReader,
)
from repro.io import BPDataset, QueryEngine, parse_config
from repro.simulations import make_cfd, make_genasis, make_xgc1


def four_tier_xml(root) -> str:
    return f"""
    <canopus-config>
      <storage root="{root}">
        <tier name="nvram"  device="nvram"  capacity="512KiB"/>
        <tier name="ssd"    device="ssd"    capacity="8MiB"/>
        <tier name="lustre" device="lustre" capacity="10GiB"/>
        <tier name="campaign" device="campaign" capacity="1TiB"/>
      </storage>
      <transport tier="lustre" method="MPI_AGGREGATE" writers="64" aggregators="4"/>
      <canopus levels="4" codec="zfp" tolerance="1e-4" decimation="2"/>
    </canopus-config>
    """


class TestXMLConfiguredPipeline:
    def test_four_tier_encode_restore(self, tmp_path):
        cfg = parse_config(four_tier_xml(tmp_path))
        ds = make_genasis(scale=0.08)
        encoder = CanopusEncoder(
            cfg.hierarchy,
            codec=cfg.codec,
            codec_params={"tolerance": cfg.tolerance, "mode": "relative"},
            transports=cfg.transports,
        )
        report, _ = encoder.encode(
            "deep", ds.variable, ds.mesh, ds.field,
            LevelScheme(cfg.levels, cfg.decimation),
        )
        # Placement spans multiple tiers (base fast, finest delta slow).
        tiers_used = set(report.placed_tiers.values())
        assert len(tiers_used) >= 3
        decoder = CanopusDecoder(
            BPDataset.open("deep", cfg.hierarchy, cfg.transports)
        )
        full = decoder.restore_to(ds.variable, 0)
        rng = np.ptp(ds.field)
        assert np.abs(full.field - ds.field).max() <= 4e-4 * rng + 1e-12

    def test_finest_delta_on_slowest_usable_tier(self, tmp_path):
        cfg = parse_config(four_tier_xml(tmp_path))
        ds = make_cfd(scale=0.3)
        encoder = CanopusEncoder(
            cfg.hierarchy, codec="zfp",
            codec_params={"tolerance": 1e-4, "mode": "relative"},
            transports=cfg.transports,
        )
        report, _ = encoder.encode(
            "cfd", ds.variable, ds.mesh, ds.field, LevelScheme(4)
        )
        base_tier = report.placed_tiers[f"{ds.variable}/L3"]
        finest_tier = report.placed_tiers[f"{ds.variable}/delta0-1"]
        order = cfg.hierarchy.tier_names()
        assert order.index(base_tier) < order.index(finest_tier)


class TestMultiVariableDataset:
    def test_two_variables_independent_schemes(self, tmp_path):
        from repro.storage import two_tier_titan

        h = two_tier_titan(tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 34)
        xgc = make_xgc1(scale=0.1)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4, "mode": "relative"})
        shared = BPDataset.create("multi", h)
        enc.encode("multi", "dpot", xgc.mesh, xgc.field,
                   LevelScheme(3), dataset=shared, close=False)
        enc.encode("multi", "density", xgc.mesh, xgc.field ** 2,
                   LevelScheme(2), dataset=shared, close=True)

        dec = CanopusDecoder(BPDataset.open("multi", h))
        assert dec.variables() == ["density", "dpot"]
        assert dec.scheme("dpot").num_levels == 3
        assert dec.scheme("density").num_levels == 2
        a = dec.restore_to("dpot", 0)
        b = dec.restore_to("density", 0)
        assert len(a.field) == len(b.field) == xgc.mesh.num_vertices


class TestQueryThenFocusedRefine:
    def test_threshold_query_guides_roi(self, tmp_path):
        """The paper's promised workflow: scan at low accuracy, then
        fetch only the high-accuracy subset around the features."""
        from repro.storage import two_tier_titan

        ds = make_xgc1(scale=0.4)
        h = two_tier_titan(tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 34)
        enc = CanopusEncoder(
            h, codec_params={"tolerance": 1e-4, "mode": "relative"}, chunks=25
        )
        enc.encode("scan", "dpot", ds.mesh, ds.field, LevelScheme(3))

        handle = BPDataset.open("scan", h)
        dec = CanopusDecoder(handle)
        base = dec.read_base("dpot")

        # 1. find the hottest region on the base.
        hot_vertex = int(np.argmax(base.field))
        center = base.mesh.vertices[hot_vertex]
        roi = (center - 0.2, center + 0.2)

        # 2. focused refinement: only chunks intersecting the ROI.
        dec.prefetch_geometry("dpot")
        before = h.clock.bytes_moved(op="read")
        refined = dec.refine(base, region=roi)
        roi_bytes = h.clock.bytes_moved(op="read") - before
        assert 0 < refined.refined_mask.sum() < len(refined.field)

        # 3. the refined region is exact; the rest is the estimate.
        dec2 = CanopusDecoder(BPDataset.open("scan", h))
        full = dec2.refine(dec2.read_base("dpot"))
        mask = refined.refined_mask
        assert np.allclose(refined.field[mask], full.field[mask])

        # 4. and it cost less I/O than a full refinement.
        dec3 = CanopusDecoder(BPDataset.open("scan", h))
        dec3.prefetch_geometry("dpot")
        b3 = dec3.read_base("dpot")
        before = h.clock.bytes_moved(op="read")
        dec3.refine(b3)
        full_bytes = h.clock.bytes_moved(op="read") - before
        assert roi_bytes < 0.6 * full_bytes

    def test_query_engine_consistent_with_data(self, tmp_path):
        from repro.storage import two_tier_titan

        ds = make_xgc1(scale=0.2)
        h = two_tier_titan(tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 34)
        enc = CanopusEncoder(
            h, codec_params={"tolerance": 1e-4, "mode": "relative"}, chunks=16
        )
        _, refactored = enc.encode("q", "dpot", ds.mesh, ds.field, LevelScheme(2))
        q = QueryEngine(BPDataset.open("q", h))
        threshold = float(np.quantile(refactored.deltas[0], 0.99))
        kept = q.candidates_above(threshold, kind="delta")
        # Soundness is guaranteed; completeness: the max delta's chunk
        # must be among the candidates.
        assert kept, "at least the chunk holding the max must survive"


class TestProgressiveBlobWorkflow:
    def test_blob_count_converges_with_refinement(self, tmp_path):
        from repro.storage import two_tier_titan

        ds = make_xgc1(scale=0.5)
        h = two_tier_titan(tmp_path, fast_capacity=32 << 20, slow_capacity=1 << 34)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4, "mode": "relative"})
        enc.encode("blobs", "dpot", ds.mesh, ds.field, LevelScheme(4))

        spec = RasterSpec.from_reference(ds.mesh, ds.field, (192, 192))
        params = BlobDetectorParams(10, 200, min_area=60)
        reference = len(detect_blobs(rasterize(ds.mesh, ds.field, spec), params))

        reader = ProgressiveReader(
            CanopusDecoder(BPDataset.open("blobs", h)), "dpot"
        )
        counts = []
        for state in reader.levels():
            img = rasterize(state.mesh, state.plane(), spec)
            counts.append(len(detect_blobs(img, params)))
        # Full-accuracy restoration finds what direct analysis finds.
        assert counts[-1] == reference
        # Refinement does not lose blobs overall (counts non-decreasing
        # within 1 blob of tolerance for grouping jitter).
        assert counts[0] <= counts[-1] + 1

    def test_error_metric_improves_monotonically(self, tmp_path):
        from repro.storage import two_tier_titan

        ds = make_genasis(scale=0.05)
        h = two_tier_titan(tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 34)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-5, "mode": "relative"})
        enc.encode("conv", ds.variable, ds.mesh, ds.field, LevelScheme(4))
        reader = ProgressiveReader(
            CanopusDecoder(BPDataset.open("conv", h)), ds.variable
        )
        errors = [
            cross_level_errors(s.mesh, s.field, ds.mesh, ds.field).rmse
            for s in reader.levels()
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.05 * errors[0]


class TestStagingTransportEndToEnd:
    def test_encode_through_staging_then_drain(self, tmp_path):
        """In-transit mode end-to-end: the simulation's write lands in
        staging memory; analytics can read only after the drain."""
        from repro.errors import TransportError
        from repro.io.transports import PosixTransport, StagingTransport
        from repro.storage import two_tier_titan

        ds = make_cfd(scale=0.1)
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        staging = StagingTransport(h.tier("lustre"))
        transports = {
            "tmpfs": PosixTransport(h.tier("tmpfs")),
            "lustre": staging,
        }
        enc = CanopusEncoder(
            h, codec_params={"tolerance": 1e-4, "mode": "relative"},
            transports=transports,
        )
        enc.encode("staged", ds.variable, ds.mesh, ds.field, LevelScheme(3))

        # Before drain: catalog (on lustre via staging) is unreadable.
        with pytest.raises(TransportError):
            BPDataset.open("staged", h, transports)
        staging.drain()
        dec = CanopusDecoder(BPDataset.open("staged", h, transports))
        full = dec.restore_to(ds.variable, 0)
        rng = np.ptp(ds.field)
        assert np.abs(full.field - ds.field).max() <= 4e-4 * rng + 1e-12


class TestTierManagementWithCanopusData:
    def test_eviction_keeps_dataset_readable(self, tmp_path):
        """Rebalancing a pressured fast tier must not break restores."""
        from repro.storage import StorageHierarchy, StorageTier, TierManager

        ds = make_xgc1(scale=0.15)
        # Fast tier sized so the base products land but push it past the
        # manager's high-water mark.
        h = StorageHierarchy(
            [
                StorageTier("fast", "dram_tmpfs", 38 << 10, tmp_path / "f"),
                StorageTier("mid", "ssd", 16 << 20, tmp_path / "m"),
                StorageTier("slow", "lustre", 1 << 33, tmp_path / "s"),
            ]
        )
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4, "mode": "relative"})
        enc.encode("run", "dpot", ds.mesh, ds.field, LevelScheme(3))
        mgr = TierManager(h, high_water=0.4, low_water=0.2)
        moves = mgr.rebalance()
        # Fast tier was pressured by the base subfile → demoted.
        assert moves
        dec = CanopusDecoder(BPDataset.open("run", h))
        full = dec.restore_to("dpot", 0)
        rng = np.ptp(ds.field)
        assert np.abs(full.field - ds.field).max() <= 3e-4 * rng + 1e-12


class TestByteSplitThroughStorage:
    def test_byte_products_across_tiers(self, tmp_path):
        """The alternative refactorer rides the same placement layer."""
        from repro.core import byte_restore, byte_split
        from repro.core.bytesplit import ByteSplitProduct
        from repro.storage import two_tier_titan

        ds = make_cfd(scale=0.2)
        h = two_tier_titan(tmp_path, fast_capacity=64 << 10, slow_capacity=1 << 34)
        products = byte_split(ds.field, plan=(2, 2, 4))
        handle = BPDataset.create("bytes", h)
        for i, product in enumerate(products):
            handle.write(
                f"pressure/bytes{i}", product.payload, kind="base" if i == 0 else "delta",
                level=i, preferred_tier=0 if i == 0 else 1,
                attrs={"offset": product.offset, "width": product.width,
                       "count": product.count},
            )
        handle.close()

        rd = BPDataset.open("bytes", h)
        got = []
        for i in range(3):
            rec = rd.inq(f"pressure/bytes{i}")
            got.append(
                ByteSplitProduct(
                    offset=rec.attrs["offset"], width=rec.attrs["width"],
                    payload=rd.read(rec.key), count=rec.attrs["count"],
                )
            )
        assert np.array_equal(byte_restore(got), ds.field)
        # The 2-byte base fits the small fast tier; the tails spill over.
        assert rd.inq("pressure/bytes0").tier == "tmpfs"
