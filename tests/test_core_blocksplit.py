"""Tests for the block-splitting (quality-layer) refactorer."""

import numpy as np
import pytest

from repro.core.blocksplit import QualityLayer, block_restore, block_split
from repro.errors import RefactoringError

TOLS = (1e-1, 1e-3, 1e-5)


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 15, 10_000)
    return np.sin(x) * np.exp(-0.05 * x) + rng.normal(0, 0.05, x.size)


class TestBlockSplit:
    def test_layer_structure(self, signal):
        layers = block_split(signal, TOLS, block=2048)
        assert len(layers) == 3
        assert [l.index for l in layers] == [0, 1, 2]
        assert all(len(l.payloads) == 5 for l in layers)

    def test_prefix_accuracy_contract(self, signal):
        """Reading layers 0..k reconstructs within tolerances[k]."""
        layers = block_split(signal, TOLS, block=2048)
        for k, tol in enumerate(TOLS):
            approx = block_restore(layers[: k + 1], count=signal.size)
            assert np.abs(approx - signal).max() <= tol + 1e-12

    def test_layers_shrink_roughly_geometrically(self, signal):
        layers = block_split(signal, TOLS, block=2048)
        # Later layers encode small residuals at tight tolerance — they
        # are not huge relative to the base.
        assert layers[0].nbytes < signal.nbytes
        total = sum(l.nbytes for l in layers)
        assert total < signal.nbytes  # still a net reduction

    def test_block_selective_refinement(self, signal):
        layers = block_split(signal, TOLS, block=2048)
        mask = np.array([True, False, False, False, False])
        out = block_restore(layers, count=signal.size, block_mask=mask)
        # Selected block: full accuracy.
        assert np.abs(out[:2048] - signal[:2048]).max() <= TOLS[-1] + 1e-12
        # Unselected blocks: base accuracy only (and not better).
        tail_err = np.abs(out[2048:] - signal[2048:]).max()
        assert tail_err <= TOLS[0] + 1e-12
        assert tail_err > TOLS[1]

    def test_validation(self, signal):
        with pytest.raises(RefactoringError):
            block_split(signal, ())
        with pytest.raises(RefactoringError):
            block_split(signal, (1e-3, 1e-1))  # increasing
        with pytest.raises(RefactoringError):
            block_split(signal, (1e-3, 1e-3))  # not strictly decreasing
        with pytest.raises(RefactoringError):
            block_split(signal, (0.0,))
        with pytest.raises(RefactoringError):
            block_split(signal, TOLS, block=0)

    def test_restore_validation(self, signal):
        layers = block_split(signal, TOLS, block=4096)
        with pytest.raises(RefactoringError):
            block_restore([])
        with pytest.raises(RefactoringError):
            block_restore(layers[1:])  # missing base
        with pytest.raises(RefactoringError):
            block_restore([layers[0], layers[2]])  # gap
        with pytest.raises(RefactoringError):
            block_restore(layers, block_mask=np.array([True]))

    def test_small_input_single_block(self):
        data = np.array([1.0, 2.0, 3.0])
        layers = block_split(data, (1e-2, 1e-6), block=1000)
        out = block_restore(layers, count=3)
        assert np.abs(out - data).max() <= 1e-6 + 1e-12

    def test_sz_codec_backend(self, signal):
        layers = block_split(signal, (1e-2, 1e-4), codec="sz", block=4096)
        out = block_restore(layers, count=signal.size)
        assert np.abs(out - signal).max() <= 1e-4 + 1e-12

    def test_mixed_layer_block_counts_rejected(self, signal):
        a = block_split(signal, (1e-2,), block=2048)[0]
        b = block_split(signal, (1e-2, 1e-4), block=4096)[1]
        with pytest.raises(RefactoringError):
            block_restore([a, b], count=signal.size)
