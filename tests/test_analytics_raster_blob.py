"""Tests for rasterization and the blob detector."""

import numpy as np
import pytest

from repro.analytics import (
    Blob,
    BlobDetectorParams,
    RasterSpec,
    blob_stats,
    detect_blobs,
    overlap_ratio,
    rasterize,
)
from repro.errors import AnalyticsError
from repro.mesh.generators import disk, structured_rectangle


def synthetic_image(blobs, shape=(128, 128), background=30):
    """Render Gaussian bumps directly to an image (no mesh involved)."""
    yy, xx = np.mgrid[0 : shape[0], 0 : shape[1]]
    img = np.full(shape, float(background))
    for (cx, cy), amp, sigma in blobs:
        img += amp * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2))
    return np.clip(img, 0, 255).astype(np.uint8)


class TestRasterSpec:
    def test_from_reference(self):
        mesh = structured_rectangle(8, 8)
        field = mesh.vertices[:, 0]
        spec = RasterSpec.from_reference(mesh, field, (32, 32))
        assert spec.vmin == 0.0 and spec.vmax == 1.0
        assert spec.shape == (32, 32)

    def test_constant_field_spec(self):
        mesh = structured_rectangle(4, 4)
        spec = RasterSpec.from_reference(mesh, np.full(16, 2.0))
        assert spec.vmax > spec.vmin

    def test_empty_field_rejected(self):
        mesh = structured_rectangle(4, 4)
        with pytest.raises(AnalyticsError):
            RasterSpec.from_reference(mesh, np.zeros(0))

    def test_margin(self):
        mesh = structured_rectangle(4, 4)
        spec = RasterSpec.from_reference(mesh, np.zeros(16), margin=0.1)
        assert spec.bounds[0][0] == pytest.approx(-0.1)
        assert spec.bounds[1][0] == pytest.approx(1.1)


class TestRasterize:
    def test_ramp_image(self):
        mesh = structured_rectangle(16, 16)
        field = mesh.vertices[:, 0]
        spec = RasterSpec.from_reference(mesh, field, (32, 32))
        img = rasterize(mesh, field, spec)
        assert img.dtype == np.uint8
        assert img[:, 0].max() == 0
        assert img[:, -1].min() == 255
        # Monotone left → right.
        assert (np.diff(img.astype(int), axis=1) >= 0).all()

    def test_clipping_under_fixed_spec(self):
        """Values beyond the reference range clip instead of rescaling."""
        mesh = structured_rectangle(8, 8)
        field = mesh.vertices[:, 0]
        spec = RasterSpec.from_reference(mesh, field, (16, 16))
        img = rasterize(mesh, field * 10.0, spec)
        assert img.max() == 255

    def test_same_spec_comparable_across_meshes(self):
        coarse = structured_rectangle(6, 6)
        fine = structured_rectangle(24, 24)
        f_fine = fine.vertices[:, 0]
        f_coarse = coarse.vertices[:, 0]
        spec = RasterSpec.from_reference(fine, f_fine, (32, 32))
        a = rasterize(fine, f_fine, spec)
        b = rasterize(coarse, f_coarse, spec)
        # A linear field rasterizes identically from either mesh.
        assert np.abs(a.astype(int) - b.astype(int)).max() <= 1


class TestBlobDetectorParams:
    def test_paper_configs_valid(self):
        BlobDetectorParams(10, 200, min_area=100)
        BlobDetectorParams(150, 200, min_area=100)
        BlobDetectorParams(10, 200, min_area=200)

    def test_validation(self):
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(min_threshold=200, max_threshold=100)
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(threshold_step=0)
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(min_area=-1)
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(min_area=100, max_area=50)
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(min_repeatability=0)
        with pytest.raises(AnalyticsError):
            BlobDetectorParams(blob_color=128)


class TestDetectBlobs:
    def test_finds_isolated_bright_blobs(self):
        img = synthetic_image(
            [((30, 30), 200, 6), ((90, 90), 200, 6), ((30, 96), 180, 7)]
        )
        blobs = detect_blobs(img, BlobDetectorParams(min_area=20))
        assert len(blobs) == 3
        centers = sorted((round(b.center[0]), round(b.center[1])) for b in blobs)
        assert centers == [(30, 30), (30, 96), (90, 90)]

    def test_empty_image_no_blobs(self):
        img = np.zeros((64, 64), dtype=np.uint8)
        assert detect_blobs(img) == []

    def test_min_area_filters_small(self):
        img = synthetic_image([((32, 32), 220, 2), ((90, 90), 220, 8)])
        blobs = detect_blobs(img, BlobDetectorParams(min_area=100, min_dist_between_blobs=5))
        assert len(blobs) == 1
        assert round(blobs[0].center[0]) == 90

    def test_max_area_filters_giant_component(self):
        img = np.full((64, 64), 200, dtype=np.uint8)  # everything bright
        blobs = detect_blobs(img, BlobDetectorParams(min_area=10, max_area=500))
        assert blobs == []

    def test_high_threshold_misses_faint_blob(self):
        img = synthetic_image([((32, 32), 100, 8)])  # peak ≈ 130
        low = detect_blobs(img, BlobDetectorParams(10, 120, min_area=20))
        high = detect_blobs(img, BlobDetectorParams(150, 200, min_area=20))
        assert len(low) == 1
        assert high == []

    def test_dark_blob_mode(self):
        img = 255 - synthetic_image([((40, 40), 220, 8)], background=0)
        blobs = detect_blobs(
            img, BlobDetectorParams(min_area=20, blob_color=0, max_area=2000)
        )
        assert len(blobs) == 1

    def test_diameter_tracks_size(self):
        small = synthetic_image([((64, 64), 220, 4)])
        large = synthetic_image([((64, 64), 220, 10)])
        p = BlobDetectorParams(min_area=10)
        d_small = detect_blobs(small, p)[0].diameter
        d_large = detect_blobs(large, p)[0].diameter
        assert d_large > d_small

    def test_repeatability_counted(self):
        img = synthetic_image([((64, 64), 220, 8)])
        blobs = detect_blobs(img, BlobDetectorParams(min_area=20))
        assert blobs[0].repeatability >= 2

    def test_min_repeatability_filter(self):
        img = synthetic_image([((64, 64), 220, 8)])
        none = detect_blobs(
            img, BlobDetectorParams(min_area=20, min_repeatability=100)
        )
        assert none == []

    def test_circularity_filter(self):
        img = np.zeros((64, 64), dtype=np.uint8)
        img[30:34, 5:60] = 200  # long thin bar: low circularity
        p_loose = BlobDetectorParams(min_area=20, min_circularity=None)
        p_strict = BlobDetectorParams(min_area=20, min_circularity=0.7)
        assert len(detect_blobs(img, p_loose)) == 1
        assert detect_blobs(img, p_strict) == []

    def test_non_2d_rejected(self):
        with pytest.raises(AnalyticsError):
            detect_blobs(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_deterministic_order(self):
        img = synthetic_image([((30, 30), 200, 6), ((90, 90), 200, 9)])
        a = detect_blobs(img, BlobDetectorParams(min_area=20))
        b = detect_blobs(img, BlobDetectorParams(min_area=20))
        assert [x.center for x in a] == [x.center for x in b]
        assert a[0].area >= a[1].area


class TestBlobMetrics:
    def mk(self, x, y, d):
        return Blob(center=(x, y), diameter=d, area=np.pi * (d / 2) ** 2, repeatability=3)

    def test_stats_empty(self):
        s = blob_stats([])
        assert s.count == 0 and s.avg_diameter == 0 and s.aggregate_area == 0

    def test_stats_values(self):
        s = blob_stats([self.mk(0, 0, 10), self.mk(5, 5, 20)])
        assert s.count == 2
        assert s.avg_diameter == pytest.approx(15.0)
        assert s.aggregate_area == pytest.approx(np.pi * (25 + 100))

    def test_overlap_identity(self):
        blobs = [self.mk(10, 10, 8), self.mk(40, 40, 6)]
        assert overlap_ratio(blobs, blobs) == 1.0

    def test_overlap_partial(self):
        ref = [self.mk(10, 10, 8), self.mk(40, 40, 6)]
        det = [self.mk(11, 11, 8), self.mk(100, 100, 6)]
        assert overlap_ratio(det, ref) == pytest.approx(0.5)

    def test_overlap_uses_radius_sum(self):
        ref = [self.mk(0, 0, 10)]  # radius 5
        near = [self.mk(8.9, 0, 8)]  # radius 4; dist 8.9 < 5+4 ⇒ overlap
        far = [self.mk(9.5, 0, 8)]  # dist 9.5 > 9 ⇒ no overlap
        assert overlap_ratio(near, ref) == 1.0
        assert overlap_ratio(far, ref) == 0.0

    def test_overlap_empty_conventions(self):
        blobs = [self.mk(0, 0, 10)]
        assert overlap_ratio([], blobs) == 1.0
        assert overlap_ratio(blobs, []) == 0.0
