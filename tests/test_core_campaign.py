"""Tests for timestep campaigns (shared geometry, per-step payloads)."""

import numpy as np
import pytest

from repro.core import CampaignReader, CampaignWriter, LevelScheme
from repro.errors import CanopusError, RestorationError
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-4


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    ds = make_xgc1(scale=0.15)
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("campaign"), fast_capacity=16 << 20,
        slow_capacity=1 << 34,
    )
    rng = np.random.default_rng(0)
    steps = {}
    writer = CampaignWriter(
        hierarchy, "run", "dpot", ds.mesh, LevelScheme(3),
        codec="zfp", codec_params={"tolerance": TOL},
    )
    reports = []
    with writer:
        for step in range(4):
            drift = 0.05 * step * np.sin(ds.mesh.vertices[:, 0] * 2 + step)
            field = ds.field + drift + rng.normal(0, 1e-3, ds.mesh.num_vertices)
            steps[step] = field
            reports.append(writer.write_step(step, field))
    return ds, hierarchy, steps, reports, writer


class TestCampaignWriter:
    def test_step_reports(self, campaign):
        _, _, _, reports, _ = campaign
        assert len(reports) == 4
        for rep in reports:
            assert rep.compressed_bytes > 0
            assert rep.reduction > 1.5
            assert rep.refactor_seconds > 0

    def test_geometry_written_once(self, campaign):
        ds, hierarchy, _, _, writer = campaign
        from repro.io import BPDataset

        handle = BPDataset.open("run", hierarchy)
        mesh_keys = [k for k in handle.keys() if "/mesh" in k]
        # One mesh per level, regardless of the number of steps.
        assert len(mesh_keys) == 3
        mapping_keys = [k for k in handle.keys() if "/mapping" in k]
        assert len(mapping_keys) == 2

    def test_duplicate_step_rejected(self, campaign):
        ds, hierarchy, *_ = campaign
        writer = CampaignWriter(
            hierarchy, "dup", "v", ds.mesh, LevelScheme(2),
            codec_params={"tolerance": TOL},
        )
        writer.write_step(0, ds.field)
        with pytest.raises(CanopusError):
            writer.write_step(0, ds.field)
        writer.close()

    def test_write_after_close_rejected(self, campaign):
        ds, hierarchy, *_ = campaign
        writer = CampaignWriter(
            hierarchy, "closed", "v", ds.mesh, LevelScheme(2),
            codec_params={"tolerance": TOL},
        )
        writer.close()
        with pytest.raises(CanopusError):
            writer.write_step(0, ds.field)

    def test_field_shape_validated(self, campaign):
        ds, hierarchy, *_ = campaign
        writer = CampaignWriter(
            hierarchy, "shape", "v", ds.mesh, LevelScheme(2),
            codec_params={"tolerance": TOL},
        )
        with pytest.raises(CanopusError):
            writer.write_step(0, np.zeros(7))
        writer.close()

    def test_close_returns_io_time(self, campaign):
        ds, hierarchy, *_ = campaign
        writer = CampaignWriter(
            hierarchy, "iotime", "v", ds.mesh, LevelScheme(2),
            codec_params={"tolerance": TOL},
        )
        writer.write_step(0, ds.field)
        io = writer.close()
        assert io > 0
        assert writer.close() == 0.0  # idempotent


class TestCampaignReader:
    def test_restore_each_step_full_accuracy(self, campaign):
        ds, hierarchy, steps, _, _ = campaign
        reader = CampaignReader(hierarchy, "run")
        assert reader.steps == [0, 1, 2, 3]
        for step, field in steps.items():
            restored = reader.restore(step, 0)
            # Base + 2 deltas, each within TOL.
            assert np.max(np.abs(restored.field - field)) <= 3 * TOL + 1e-12

    def test_restore_base_level(self, campaign):
        _, hierarchy, _, _, writer = campaign
        reader = CampaignReader(hierarchy, "run")
        base = reader.restore(2, 2)
        assert base.level == 2
        assert len(base.field) == writer.meshes[2].num_vertices

    def test_unknown_step(self, campaign):
        _, hierarchy, *_ = campaign
        reader = CampaignReader(hierarchy, "run")
        with pytest.raises(RestorationError):
            reader.restore(99)

    def test_not_a_campaign(self, campaign, tmp_path):
        ds, hierarchy, *_ = campaign
        from repro.io import BPDataset

        BPDataset.create("plain", hierarchy).close()
        with pytest.raises(RestorationError):
            CampaignReader(hierarchy, "plain")

    def test_geometry_amortized_across_steps(self, campaign):
        """Geometry I/O happens once; per-step retrievals touch only
        field payloads."""
        _, hierarchy, _, _, _ = campaign
        reader = CampaignReader(hierarchy, "run")
        reader.prefetch_geometry()
        geom_io = reader.geometry_timings.io_seconds
        assert geom_io > 0
        io_per_step = []
        for step in reader.steps:
            res = reader.restore(step, 0)
            io_per_step.append(res.timings.io_seconds)
        # No step re-reads geometry: step I/O stays flat, and the total
        # geometry cost did not grow.
        assert reader.geometry_timings.io_seconds == geom_io
        assert max(io_per_step) < 2 * min(io_per_step)

    def test_time_series_iteration(self, campaign):
        _, hierarchy, steps, _, _ = campaign
        reader = CampaignReader(hierarchy, "run")
        seen = []
        for step, data in reader.time_series(target_level=1, steps=[1, 3]):
            seen.append(step)
            assert data.level == 1
        assert seen == [1, 3]

    def test_trajectory_statistic(self, campaign):
        """A cross-step analysis: the field drifts monotonically by
        construction; the restored series must reflect it."""
        _, hierarchy, steps, _, _ = campaign
        reader = CampaignReader(hierarchy, "run")
        means = [
            float(np.mean(np.abs(data.field - steps[0])))
            for _, data in reader.time_series(target_level=0)
        ]
        assert means[0] < means[1] < means[2] < means[3]
