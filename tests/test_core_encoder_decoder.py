"""End-to-end tests for the Canopus encoder/decoder and progressive reader."""

import numpy as np
import pytest

from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    ProgressiveReader,
)
from repro.errors import CanopusError, RestorationError
from repro.io import BPDataset
from repro.mesh.generators import annulus, disk
from repro.storage import SimClock, StorageHierarchy, StorageTier, two_tier_titan

TOL = 1e-4


@pytest.fixture
def hierarchy(tmp_path):
    return two_tier_titan(tmp_path, fast_capacity=4 << 20, slow_capacity=1 << 33)


@pytest.fixture(scope="module")
def dataset_inputs():
    mesh = annulus(40, 120)
    v = mesh.vertices
    field = np.sin(3 * v[:, 0]) * np.cos(3 * v[:, 1]) + 0.4 * np.exp(
        -((v[:, 0] - 0.8) ** 2 + v[:, 1] ** 2) / 0.05
    )
    return mesh, field


def encode(hierarchy, mesh, field, *, levels=3, **kw):
    kw.setdefault("codec", "zfp")
    kw.setdefault("codec_params", {"tolerance": TOL})
    enc = CanopusEncoder(hierarchy, **kw)
    return enc.encode("run", "dpot", mesh, field, LevelScheme(levels))


class TestEncoder:
    def test_products_and_placement(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        report, _ = encode(hierarchy, mesh, field)
        assert report.placed_tiers["dpot/L2"] == "tmpfs"
        assert report.placed_tiers["dpot/delta1-2"] == "lustre"
        assert report.placed_tiers["dpot/delta0-1"] == "lustre"
        assert report.compressed_bytes["dpot/L2"] > 0
        assert report.original_bytes == field.nbytes
        assert report.io_seconds > 0
        assert report.decimation_seconds > 0

    def test_base_bypasses_tiny_fast_tier(self, tmp_path, dataset_inputs):
        mesh, field = dataset_inputs
        h = two_tier_titan(tmp_path, fast_capacity=32 << 10, slow_capacity=1 << 33)
        report, _ = encode(h, mesh, field)
        # 32 KiB cannot hold base field + base mesh → bypass to lustre.
        assert report.placed_tiers["dpot/mesh2"] == "lustre"

    def test_payload_smaller_than_original(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        report, _ = encode(hierarchy, mesh, field)
        assert report.payload_bytes < report.original_bytes

    def test_invalid_chunks(self, hierarchy):
        with pytest.raises(CanopusError):
            CanopusEncoder(hierarchy, chunks=0)

    def test_bad_codec_fails_fast(self, hierarchy):
        from repro.errors import UnknownCodecError

        with pytest.raises(UnknownCodecError):
            CanopusEncoder(hierarchy, codec="nope")

    def test_multiple_variables_one_dataset(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        enc = CanopusEncoder(hierarchy, codec_params={"tolerance": TOL})
        ds = BPDataset.create("multi", hierarchy)
        enc.encode("multi", "a", mesh, field, LevelScheme(2), dataset=ds, close=False)
        enc.encode("multi", "b", mesh, 2 * field, LevelScheme(2), dataset=ds, close=True)
        dec = CanopusDecoder(BPDataset.open("multi", hierarchy))
        assert dec.variables() == ["a", "b"]


class TestDecoder:
    def test_read_base(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        base = dec.read_base("dpot")
        assert base.level == 2
        assert base.mesh.num_vertices == len(base.field)
        assert base.mesh.num_vertices == pytest.approx(
            mesh.num_vertices / 4, rel=0.02
        )

    def test_restore_full_accuracy_error_bounded(self, hierarchy, dataset_inputs):
        """Total error ≤ sum of per-stage codec tolerances."""
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        full = dec.restore_to("dpot", 0)
        assert full.level == 0
        assert len(full.field) == mesh.num_vertices
        assert np.max(np.abs(full.field - field)) <= 3 * TOL + 1e-12

    def test_restore_lossless_codec_near_exact(self, hierarchy, dataset_inputs):
        """Lossless codec ⇒ only float rounding remains (1 ulp per stage).

        delta = fine − est and restore = delta + est each round once, so
        the round trip is exact to ~machine epsilon, not bit-exact.
        """
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field, codec="fpc", codec_params={})
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        full = dec.restore_to("dpot", 0)
        scale = np.abs(field).max()
        assert np.max(np.abs(full.field - field)) <= 4 * np.finfo(float).eps * scale

    def test_restore_intermediate_level(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        mid = dec.restore_to("dpot", 1)
        assert mid.level == 1
        assert mid.mesh.num_vertices == pytest.approx(
            mesh.num_vertices / 2, rel=0.02
        )

    def test_timings_accumulate(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        base = dec.read_base("dpot")
        full = dec.restore_to("dpot", 0)
        assert full.timings.io_seconds > base.timings.io_seconds
        assert full.timings.restore_seconds > 0
        assert full.timings.total_seconds == pytest.approx(
            full.timings.io_seconds
            + full.timings.decompress_seconds
            + full.timings.restore_seconds
        )

    def test_base_io_cheaper_than_full_restore_io(self, hierarchy, dataset_inputs):
        """The elastic-analytics claim: a quick look costs far less I/O."""
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        base_io = dec.read_base("dpot").timings.io_seconds
        dec2 = CanopusDecoder(BPDataset.open("run", hierarchy))
        full_io = dec2.restore_to("dpot", 0).timings.io_seconds
        assert base_io < 0.5 * full_io

    def test_refine_beyond_full_raises(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        full = dec.restore_to("dpot", 0)
        with pytest.raises(RestorationError):
            dec.refine(full)

    def test_unknown_variable(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        with pytest.raises(RestorationError):
            dec.read_base("nope")

    def test_delta_rms_reported(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        dec = CanopusDecoder(BPDataset.open("run", hierarchy))
        state = dec.refine(dec.read_base("dpot"))
        assert state.last_delta_rms > 0


class TestChunkedAndFocused:
    def test_chunked_roundtrip_matches_monolithic(self, tmp_path, dataset_inputs):
        mesh, field = dataset_inputs
        h = two_tier_titan(tmp_path, fast_capacity=4 << 20, slow_capacity=1 << 33)
        report, _ = encode(h, mesh, field, chunks=8)
        assert "dpot/delta0-1/chunk0" in report.compressed_bytes
        dec = CanopusDecoder(BPDataset.open("run", h))
        full = dec.restore_to("dpot", 0)
        assert np.max(np.abs(full.field - field)) <= 3 * TOL + 1e-12

    def test_focused_refinement_reads_fewer_bytes(self, tmp_path, dataset_inputs):
        mesh, field = dataset_inputs
        h = two_tier_titan(tmp_path, fast_capacity=4 << 20, slow_capacity=1 << 33)
        encode(h, mesh, field, chunks=16)

        dec = CanopusDecoder(BPDataset.open("run", h))
        base = dec.read_base("dpot")
        before = h.clock.bytes_moved(op="read")
        roi = (np.array([0.5, -0.4]), np.array([1.1, 0.4]))
        focused = dec.refine(base, region=roi)
        focused_bytes = h.clock.bytes_moved(op="read") - before

        dec2 = CanopusDecoder(BPDataset.open("run", h))
        base2 = dec2.read_base("dpot")
        before = h.clock.bytes_moved(op="read")
        full = dec2.refine(base2)
        full_bytes = h.clock.bytes_moved(op="read") - before

        assert focused_bytes < full_bytes
        assert focused.refined_mask is not None
        assert 0 < focused.refined_mask.sum() < len(focused.field)
        # Inside the refined region, values match the fully refined field.
        assert np.allclose(
            focused.field[focused.refined_mask],
            full.field[focused.refined_mask],
        )


class TestProgressiveReader:
    def test_levels_iteration(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        seen = [s.level for s in pr.levels()]
        assert seen == [2, 1, 0]
        assert pr.at_full_accuracy

    def test_refine_until_rms(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        # Huge tolerance → stop after the first refinement.
        state = pr.refine_until(rms_tolerance=1e9)
        assert state.level == 1

    def test_refine_until_predicate(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        state = pr.refine_until(stop=lambda s: s.level == 1)
        assert state.level == 1

    def test_refine_until_needs_criterion(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        with pytest.raises(RestorationError):
            pr.refine_until()

    def test_refine_past_full_raises(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field, levels=2)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        pr.refine()
        with pytest.raises(RestorationError):
            pr.refine()

    def test_reset(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        pr = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot"
        )
        pr.refine()
        pr.reset()
        assert pr.level == 2
