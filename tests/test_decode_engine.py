"""Tests for the parallel decode engine and the shared read-side caches.

Covers the PR-4 acceptance points: parallel chunk decode and
multi-variable fan-out are bit-identical to the serial seed path
(including region + min_significance filtered retrieval, whose chunk
scatter order must not matter), the process-wide restored-level and
geometry caches are correct and thread-safe under concurrent
``restore_many``, and the ``refine_until`` NaN-rms regression stays
fixed.
"""

import threading

import numpy as np
import pytest

from repro.api import (
    DecodeEngine,
    dataset_fingerprint,
    get_geometry_cache,
    get_restored_cache,
    read_progressive,
    read_progressive_many,
)
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.core.campaign import CampaignReader, CampaignWriter
from repro.errors import RestorationError
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-5
CHUNKS = 16
VARS = ["dpot", "apar", "dden"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts and ends with empty process-wide caches."""
    get_restored_cache().clear()
    get_geometry_cache().clear()
    yield
    get_restored_cache().clear()
    get_geometry_cache().clear()


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    src = make_xgc1(scale=0.25)
    rng = np.random.default_rng(11)
    fields = {
        "dpot": src.field,
        "apar": 0.5 * src.field + 0.1 * rng.standard_normal(src.field.shape),
        "dden": np.abs(src.field),
    }
    h = two_tier_titan(
        tmp_path_factory.mktemp("engine"),
        fast_capacity=64 << 20,
        slow_capacity=1 << 36,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=CHUNKS,
    )
    ds_w = BPDataset.create("run", h)
    for var, f in fields.items():
        enc.encode("run", var, src.mesh, f, LevelScheme(3),
                   dataset=ds_w, close=False)
    ds_w.close()
    return src, fields, h


def _serial_restore(h, var, level=0, *, region=None, min_significance=0.0):
    """The seed path: one decoder, workers=1, no pipeline, no caches."""
    dec = CanopusDecoder(BPDataset.open("run", h), workers=1)
    if region is None and min_significance == 0.0:
        return dec.restore_to(var, level, pipeline=False)
    state = dec.read_base(var)
    while state.level > level:
        state = dec.refine(
            state, region=region, min_significance=min_significance
        )
    return state


class TestBitIdentity:
    def test_restore_many_matches_serial(self, setup):
        _, fields, h = setup
        serial = {v: _serial_restore(h, v) for v in fields}
        engine = DecodeEngine(BPDataset.open("run", h), workers=4)
        out = engine.restore_many(list(fields), 0)
        for var in fields:
            assert np.array_equal(out[var].field, serial[var].field)

    def test_parallel_chunk_decode_matches_serial(self, setup):
        _, _, h = setup
        serial = _serial_restore(h, "dpot")
        parallel = CanopusDecoder(
            BPDataset.open("run", h), workers=8
        ).restore_to("dpot", 0, pipeline=True)
        assert np.array_equal(parallel.field, serial.field)

    def test_region_and_significance_parallel_vs_serial(self, setup):
        src, _, h = setup
        center = src.mesh.vertices[int(np.argmax(src.field))]
        region = (center - 0.4, center + 0.4)
        ms = 0.02 * float(np.abs(src.field).max())
        serial = _serial_restore(
            h, "dpot", region=region, min_significance=ms
        )
        engine = DecodeEngine(BPDataset.open("run", h), workers=8)
        out = engine.restore(
            "dpot", 0, region=region, min_significance=ms
        )
        # Chunk scatter order must not matter: disjoint vertex sets.
        assert np.array_equal(out.field, serial.field)
        assert np.array_equal(out.refined_mask, serial.refined_mask)

    def test_facade_matches_serial(self, setup):
        _, fields, h = setup
        serial = {v: _serial_restore(h, v, 1) for v in fields}
        out = read_progressive_many(
            BPDataset.open("run", h), list(fields), level=1
        )
        for var in fields:
            assert out[var].level == 1
            assert np.array_equal(out[var].field, serial[var].field)


class TestRestoredLevelCache:
    def test_second_restore_reads_zero_bytes(self, setup):
        _, _, h = setup
        engine = DecodeEngine(BPDataset.open("run", h), workers=4)
        first = engine.restore("dpot", 0)
        before = h.clock.bytes_moved(op="read")
        second = engine.restore("dpot", 0)
        assert h.clock.bytes_moved(op="read") == before  # geometry cached too
        assert np.array_equal(second.field, first.field)
        assert get_restored_cache().hits >= 1

    def test_warm_start_from_coarser_level(self, setup):
        _, _, h = setup
        engine = DecodeEngine(BPDataset.open("run", h), workers=4)
        engine.restore("dpot", 1)
        serial = _serial_restore(h, "dpot", 0)
        bytes_before = h.clock.bytes_moved(op="read")
        full = engine.restore("dpot", 0)
        warm_bytes = h.clock.bytes_moved(op="read") - bytes_before

        get_restored_cache().clear()
        bytes_before = h.clock.bytes_moved(op="read")
        engine2 = DecodeEngine(BPDataset.open("run", h), workers=4)
        cold = engine2.restore("dpot", 0)
        cold_bytes = h.clock.bytes_moved(op="read") - bytes_before
        assert np.array_equal(full.field, serial.field)
        assert np.array_equal(cold.field, serial.field)
        # Warm start skips the base + upper delta payloads.
        assert warm_bytes < cold_bytes

    def test_filtered_entries_are_not_substituted(self, setup):
        src, _, h = setup
        engine = DecodeEngine(BPDataset.open("run", h), workers=4)
        ms = 0.05 * float(np.abs(src.field).max())
        pruned = engine.restore("dpot", 0, min_significance=ms)
        full = engine.restore("dpot", 0)
        serial = _serial_restore(h, "dpot", 0)
        assert np.array_equal(full.field, serial.field)
        assert not np.array_equal(pruned.field, full.field)
        # The filtered result is cached under its own key and hits too.
        again = engine.restore("dpot", 0, min_significance=ms)
        assert np.array_equal(again.field, pruned.field)

    def test_cached_field_is_immutable_snapshot(self, setup):
        _, _, h = setup
        engine = DecodeEngine(BPDataset.open("run", h), workers=4)
        first = engine.restore("dpot", 0)
        first.field[...] = -1.0  # callers own their copy
        second = engine.restore("dpot", 0)
        assert not np.array_equal(second.field, first.field)

    def test_fingerprint_distinguishes_datasets(self, setup, tmp_path):
        src, _, h = setup
        h2 = two_tier_titan(
            tmp_path, fast_capacity=64 << 20, slow_capacity=1 << 36
        )
        enc = CanopusEncoder(
            h2, codec="zfp",
            codec_params={"tolerance": TOL, "mode": "relative"},
        )
        enc.encode("run", "dpot", src.mesh, 2.0 * src.field, LevelScheme(3))
        ds_a = BPDataset.open("run", h)
        ds_b = BPDataset.open("run", h2)
        assert dataset_fingerprint(ds_a) != dataset_fingerprint(ds_b)
        a = DecodeEngine(ds_a, workers=2).restore("dpot", 0)
        b = DecodeEngine(ds_b, workers=2).restore("dpot", 0)
        assert not np.array_equal(a.field, b.field)

    def test_eviction_keeps_budget(self, setup):
        from repro.core.restored_cache import RestoredLevelCache

        _, _, h = setup
        ds = BPDataset.open("run", h)
        small = RestoredLevelCache(max_bytes=4096)
        for lvl in (2, 1):
            small.put(
                small.key_for(ds, "x", lvl), np.zeros(256, dtype=np.float64)
            )
        assert small.stats()["bytes"] <= 4096
        # An entry larger than the whole budget is never cached.
        small.put(small.key_for(ds, "y", 0), np.zeros(4096, dtype=np.float64))
        assert not small.has(small.key_for(ds, "y", 0))


class TestThreadSafety:
    def test_concurrent_restore_many_is_consistent(self, setup):
        _, fields, h = setup
        serial = {v: _serial_restore(h, v) for v in fields}
        results: list[dict] = []
        errors: list[Exception] = []

        def worker():
            try:
                engine = DecodeEngine(BPDataset.open("run", h), workers=2)
                results.append(engine.restore_many(list(fields), 0))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 4
        for out in results:
            for var in fields:
                assert np.array_equal(out[var].field, serial[var].field)

    def test_geometry_cache_shared_across_decoders(self, setup):
        _, _, h = setup
        engine = DecodeEngine(BPDataset.open("run", h), workers=2)
        engine.restore("dpot", 0)
        geo = get_geometry_cache()
        assert geo.stats()["entries"] > 0
        # A second engine over the same bytes decodes no new geometry.
        before = geo.misses
        engine2 = DecodeEngine(BPDataset.open("run", h), workers=2)
        engine2.restore("dpot", 1)
        assert geo.misses == before


class TestRmsRegression:
    def test_refine_until_does_not_stop_on_empty_step(self, setup):
        src, _, h = setup
        ms = 1e12  # prunes every chunk: nothing applied per step
        reader = read_progressive(
            BPDataset.open("run", h), "dpot", min_significance=ms
        )
        final = reader.refine_until(rms_tolerance=1e-9, max_level=0)
        # NaN rms on empty steps must not fake convergence: the loop
        # runs all the way down instead of stopping after one step.
        assert final.level == 0
        assert np.isnan(final.last_delta_rms)

    def test_empty_refine_reports_nan(self, setup):
        _, _, h = setup
        dec = CanopusDecoder(BPDataset.open("run", h))
        state = dec.refine(dec.read_base("dpot"), min_significance=1e12)
        assert not state.refined_mask.any()
        assert np.isnan(state.last_delta_rms)


class TestCampaignRestoreMany:
    def test_matches_serial_restore(self, setup, tmp_path):
        src, _, h_unused = setup
        h = two_tier_titan(
            tmp_path, fast_capacity=64 << 20, slow_capacity=1 << 36
        )
        writer = CampaignWriter(
            h, "camp", "dpot", src.mesh, LevelScheme(3),
            codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        )
        rng = np.random.default_rng(5)
        for step in range(4):
            writer.write_step(
                step, src.field + 0.01 * step * rng.standard_normal(src.field.shape)
            )
        writer.close()

        serial_reader = CampaignReader(h, "camp")
        serial = {s: serial_reader.restore(s, 0) for s in range(4)}
        reader = CampaignReader(h, "camp")
        out = reader.restore_many(workers=4)
        assert sorted(out) == [0, 1, 2, 3]
        for step in range(4):
            assert np.array_equal(out[step].field, serial[step].field)

    def test_rejects_unknown_step(self, setup, tmp_path):
        src, _, _ = setup
        h = two_tier_titan(
            tmp_path, fast_capacity=64 << 20, slow_capacity=1 << 36
        )
        writer = CampaignWriter(
            h, "camp2", "dpot", src.mesh, LevelScheme(2),
            codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        )
        writer.write_step(0, src.field)
        writer.close()
        reader = CampaignReader(h, "camp2")
        with pytest.raises(RestorationError):
            reader.restore_many([0, 99])


class TestEngineValidation:
    def test_bad_workers(self, setup):
        _, _, h = setup
        with pytest.raises(RestorationError):
            DecodeEngine(BPDataset.open("run", h), workers=0)
        with pytest.raises(RestorationError):
            CanopusDecoder(BPDataset.open("run", h), workers=0)

    def test_empty_restore_many(self, setup):
        _, _, h = setup
        assert DecodeEngine(BPDataset.open("run", h)).restore_many([]) == {}
