"""Tests for mesh partitioning and partitioned (parallel) encoding."""

import numpy as np
import pytest

from repro.core import LevelScheme
from repro.core.parallel import PartitionedDecoder, encode_partitioned
from repro.errors import CanopusError, MeshError, RestorationError
from repro.mesh.generators import disk, structured_rectangle
from repro.mesh.partition import gather_field, partition_mesh
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-4


class TestPartitionMesh:
    def test_triangles_tile_disjointly(self):
        mesh = disk(800, seed=0)
        parts = partition_mesh(mesh, 4)
        total = sum(p.mesh.num_triangles for p in parts)
        assert total == mesh.num_triangles

    def test_every_vertex_owned_once(self):
        mesh = disk(800, seed=1)
        parts = partition_mesh(mesh, 6)
        owners = np.zeros(mesh.num_vertices, dtype=int)
        for p in parts:
            owners[p.global_vertices[p.owned]] += 1
        assert (owners == 1).all()

    def test_local_meshes_valid(self):
        mesh = structured_rectangle(20, 20, jitter=0.2, seed=2)
        for p in partition_mesh(mesh, 4):
            assert (p.mesh.triangle_areas() > 0).all()
            assert p.mesh.num_vertices == len(p.global_vertices)

    def test_geometry_preserved(self):
        mesh = disk(500, seed=3)
        parts = partition_mesh(mesh, 4)
        for p in parts:
            assert np.allclose(
                p.mesh.vertices, mesh.vertices[p.global_vertices]
            )

    def test_restrict(self):
        mesh = disk(300, seed=4)
        field = np.arange(mesh.num_vertices, dtype=float)
        p = partition_mesh(mesh, 4)[0]
        assert np.array_equal(p.restrict(field), field[p.global_vertices])

    def test_restrict_planes(self):
        mesh = disk(300, seed=4)
        field = np.tile(np.arange(mesh.num_vertices, dtype=float), (3, 1))
        p = partition_mesh(mesh, 4)[0]
        assert p.restrict(field).shape == (3, p.mesh.num_vertices)

    def test_single_partition(self):
        mesh = disk(200, seed=5)
        parts = partition_mesh(mesh, 1)
        assert len(parts) == 1
        assert parts[0].num_owned == mesh.num_vertices

    def test_validation(self):
        mesh = disk(100, seed=6)
        with pytest.raises(MeshError):
            partition_mesh(mesh, 0)

    def test_gather_roundtrip(self):
        mesh = disk(700, seed=7)
        field = np.sin(mesh.vertices[:, 0] * 3)
        parts = partition_mesh(mesh, 5)
        locals_ = [p.restrict(field) for p in parts]
        out = gather_field(parts, locals_, mesh.num_vertices)
        assert np.array_equal(out, field)

    def test_gather_validation(self):
        mesh = disk(200, seed=8)
        parts = partition_mesh(mesh, 2)
        with pytest.raises(MeshError):
            gather_field(parts, [np.zeros(3)] * len(parts), mesh.num_vertices)
        with pytest.raises(MeshError):
            gather_field(parts, [], mesh.num_vertices)


class TestPartitionedEncoding:
    @pytest.fixture(scope="class")
    def encoded(self, tmp_path_factory):
        ds = make_xgc1(scale=0.2)
        h = two_tier_titan(
            tmp_path_factory.mktemp("part"), fast_capacity=16 << 20,
            slow_capacity=1 << 34,
        )
        report, partitions = encode_partitioned(
            h, "prun", "dpot", ds.mesh, ds.field, LevelScheme(3),
            parts=4, codec="zfp",
            codec_params={"tolerance": TOL, "mode": "relative"},
        )
        return ds, h, report, partitions

    def test_report(self, encoded):
        ds, _, report, partitions = encoded
        assert report.parts == len(partitions)
        assert report.compressed_bytes > 0
        assert len(report.per_part_seconds) == report.parts
        assert report.refactor_seconds > 0

    def test_gather_full_accuracy_bounded(self, encoded):
        ds, h, _, _ = encoded
        dec = PartitionedDecoder(h, "prun")
        out = dec.gather_full_accuracy()
        rng = np.ptp(ds.field)
        assert np.abs(out - ds.field).max() <= 3 * TOL * rng + 1e-12

    def test_restore_partition_levels(self, encoded):
        ds, h, _, _ = encoded
        dec = PartitionedDecoder(h, "prun")
        mesh2, field2 = dec.restore_partition(0, 2)
        mesh0, field0 = dec.restore_partition(0, 0)
        assert len(field2) == mesh2.num_vertices
        assert mesh0.num_vertices == pytest.approx(
            4 * mesh2.num_vertices, rel=0.1
        )

    def test_restore_levels_union(self, encoded):
        ds, h, _, _ = encoded
        dec = PartitionedDecoder(h, "prun")
        union = dec.restore_levels(1)
        assert len(union) == dec.parts
        total = sum(m.num_vertices for m, _ in union)
        # Level-1 union has about half the global vertices (plus halos).
        assert total == pytest.approx(ds.mesh.num_vertices / 2, rel=0.25)

    def test_not_partitioned_dataset(self, encoded, tmp_path):
        _, h, _, _ = encoded
        from repro.io import BPDataset

        BPDataset.create("plain", h).close()
        with pytest.raises(RestorationError):
            PartitionedDecoder(h, "plain")

    def test_shape_validation(self, encoded):
        ds, h, _, _ = encoded
        with pytest.raises(CanopusError):
            encode_partitioned(
                h, "bad", "v", ds.mesh, np.zeros(5), LevelScheme(2)
            )

    def test_parallel_processes_match_serial(self, tmp_path):
        """Process-pool encoding produces the same restored field."""
        ds = make_xgc1(scale=0.12)
        h = two_tier_titan(
            tmp_path, fast_capacity=16 << 20, slow_capacity=1 << 34
        )
        encode_partitioned(
            h, "serial", "dpot", ds.mesh, ds.field, LevelScheme(2),
            parts=4, codec_params={"tolerance": TOL, "mode": "relative"},
        )
        encode_partitioned(
            h, "parallel", "dpot", ds.mesh, ds.field, LevelScheme(2),
            parts=4, processes=2,
            codec_params={"tolerance": TOL, "mode": "relative"},
        )
        a = PartitionedDecoder(h, "serial").gather_full_accuracy()
        b = PartitionedDecoder(h, "parallel").gather_full_accuracy()
        assert np.array_equal(a, b)
