"""Tests for the retrieval engine: range cache, batching, prefetch."""

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme, ProgressiveReader
from repro.errors import BPFormatError, StorageError
from repro.io import BPDataset, RangeCache
from repro.io.engine import EngineStats, RetrievalEngine
from repro.mesh.generators import annulus
from repro.storage import SimClock, StorageHierarchy, StorageTier, two_tier_titan

TOL = 1e-4


@pytest.fixture
def hierarchy(tmp_path):
    return two_tier_titan(tmp_path, fast_capacity=4 << 20, slow_capacity=1 << 33)


@pytest.fixture(scope="module")
def dataset_inputs():
    mesh = annulus(40, 120)
    v = mesh.vertices
    field = np.sin(3 * v[:, 0]) * np.cos(3 * v[:, 1]) + 0.4 * np.exp(
        -((v[:, 0] - 0.8) ** 2 + v[:, 1] ** 2) / 0.05
    )
    return mesh, field


def encode(hierarchy, mesh, field, *, levels=3, **kw):
    kw.setdefault("codec", "zfp")
    kw.setdefault("codec_params", {"tolerance": TOL})
    enc = CanopusEncoder(hierarchy, **kw)
    return enc.encode("run", "dpot", mesh, field, LevelScheme(levels))


def plain_dataset(hierarchy, payloads, **open_kwargs):
    """Write raw payloads and reopen the dataset for reading."""
    ds = BPDataset.create("raw", hierarchy)
    for key, (payload, tier) in payloads.items():
        ds.write(key, payload, preferred_tier=tier)
    ds.close()
    return BPDataset.open("raw", hierarchy, **open_kwargs)


class TestRangeCache:
    def test_hit_miss_and_recency(self):
        cache = RangeCache(100)
        key = ("sub.bp", 0, 3)
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.put(key, b"abc", "fast")
        entry = cache.get(key)
        assert entry is not None and entry.data == b"abc"
        assert entry.tier == "fast"
        assert cache.hits == 1
        assert key in cache
        assert len(cache) == 1
        assert cache.used_bytes == 3

    def test_lru_eviction_order(self):
        cache = RangeCache(10)
        a, b, c = ("s", 0, 4), ("s", 4, 4), ("s", 8, 4)
        cache.put(a, b"aaaa", "t")
        cache.put(b, b"bbbb", "t")
        cache.get(a)  # refresh a → b is now least recently used
        cache.put(c, b"cccc", "t")  # over budget → evict b
        assert a in cache and c in cache and b not in cache
        assert cache.evictions == 1
        assert cache.used_bytes <= 10

    def test_oversized_entry_bypasses(self):
        cache = RangeCache(4)
        assert not cache.put(("s", 0, 8), b"x" * 8, "t")
        assert len(cache) == 0

    def test_zero_capacity_disables(self):
        cache = RangeCache(0)
        assert not cache.put(("s", 0, 1), b"x", "t")
        assert cache.get(("s", 0, 1)) is None

    def test_replacing_entry_reclaims_bytes(self):
        cache = RangeCache(10)
        key = ("s", 0, 4)
        cache.put(key, b"aaaa", "t")
        cache.put(key, b"bb", "t")
        assert cache.used_bytes == 2

    def test_invalidate(self):
        cache = RangeCache(100)
        cache.put(("one.bp", 0, 1), b"a", "t")
        cache.put(("one.bp", 1, 1), b"b", "t")
        cache.put(("two.bp", 0, 1), b"c", "t")
        assert cache.invalidate("one.bp") == 2
        assert cache.used_bytes == 1
        assert cache.invalidate() == 1
        assert cache.used_bytes == 0

    def test_stats_dict(self):
        cache = RangeCache(100)
        cache.put(("s", 0, 1), b"x", "t")
        stats = cache.stats()
        assert stats["insertions"] == 1
        assert stats["capacity_bytes"] == 100

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RangeCache(-1)


class TestEngineCaching:
    def test_repeated_read_hits_cache_and_charges_once(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"payload-bytes", 1)})
        first = rd.read("k")
        clock_after_first = hierarchy.clock.elapsed
        second = rd.read("k")
        assert first == second == b"payload-bytes"
        assert hierarchy.clock.elapsed == clock_after_first  # hit is free
        stats = rd.engine_stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_from_cache == len(b"payload-bytes")
        assert stats.bytes_from_tier["lustre"] == len(b"payload-bytes")

    def test_cache_disabled_recharges(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"payload", 1)}, cache_bytes=0)
        rd.read("k")
        t1 = hierarchy.clock.elapsed
        rd.read("k")
        assert hierarchy.clock.elapsed > t1
        assert rd.engine_stats().hits == 0

    def test_cold_read_charge_matches_legacy_model(self, hierarchy):
        payload = b"z" * 10_000
        rd = plain_dataset(hierarchy, {"k": (payload, 1)})
        device = hierarchy.tier("lustre").device
        before = hierarchy.clock.elapsed
        rd.read("k")
        assert hierarchy.clock.elapsed - before == pytest.approx(
            device.read_seconds(len(payload))
        )

    def test_eviction_under_tiny_budget(self, hierarchy):
        payloads = {
            f"k{i}": (bytes([65 + i]) * 4096, 1) for i in range(8)
        }
        rd = plain_dataset(hierarchy, payloads, cache_bytes=2 * 4096)
        for key in payloads:
            rd.read(key)
        cache_stats = rd.engine.cache.stats()
        assert cache_stats["evictions"] > 0
        assert cache_stats["used_bytes"] <= 2 * 4096


class TestReadMany:
    def test_batch_returns_all_and_coalesces(self, hierarchy):
        payloads = {f"k{i}": (bytes([48 + i]) * 256, 1) for i in range(6)}
        rd = plain_dataset(hierarchy, payloads)
        out = rd.read_many(sorted(payloads))
        assert out == {k: v for k, (v, _) in payloads.items()}
        stats = rd.engine_stats()
        assert stats.batches == 1
        # Adjacent ranges in one subfile coalesce into a single span.
        assert stats.coalesced_spans == 1

    def test_batch_cheaper_than_serial(self, tmp_path):
        payloads = {f"k{i}": (bytes([48 + i]) * 50_000, 1) for i in range(6)}
        h_serial = two_tier_titan(tmp_path / "a")
        rd = plain_dataset(h_serial, payloads)
        before = h_serial.clock.elapsed
        for key in sorted(payloads):
            rd.read(key)
        serial_cost = h_serial.clock.elapsed - before

        h_batch = two_tier_titan(tmp_path / "b")
        rd2 = plain_dataset(h_batch, payloads)
        before = h_batch.clock.elapsed
        rd2.read_many(sorted(payloads))
        batch_cost = h_batch.clock.elapsed - before
        assert batch_cost < serial_cost

    def test_batch_across_tiers_overlaps(self, tmp_path):
        h = two_tier_titan(tmp_path)
        ds = BPDataset.create("raw", h)
        ds.write("fastkey", b"f" * 30_000, preferred_tier=0)
        ds.write("slowkey", b"s" * 30_000, preferred_tier=1)
        ds.close()
        rd = BPDataset.open("raw", h)
        tmpfs = h.tier("tmpfs").device
        lustre = h.tier("lustre").device
        before = h.clock.elapsed
        out = rd.read_many(["fastkey", "slowkey"])
        cost = h.clock.elapsed - before
        assert out["fastkey"] == b"f" * 30_000
        # Tiers overlap: total advance is the max per-tier charge, not sum.
        expected = max(
            tmpfs.concurrent_read_seconds([30_000]),
            lustre.concurrent_read_seconds([30_000]),
        )
        assert cost == pytest.approx(expected)

    def test_duplicate_keys_fetch_once(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"abc", 1)})
        out = rd.read_many(["k", "k", "k"])
        assert out == {"k": b"abc"}
        assert rd.engine_stats().misses == 1


class TestPrefetch:
    def test_prefetch_then_read_is_useful_hit(self, hierarchy):
        payloads = {f"k{i}": (b"x" * 1000, 1) for i in range(3)}
        rd = plain_dataset(hierarchy, payloads)
        issued = rd.prefetch(sorted(payloads))
        assert issued >= 1
        rd.engine.drain()
        charged = hierarchy.clock.elapsed
        for key in sorted(payloads):
            assert rd.read(key) == b"x" * 1000
        # Reads after the prefetch landed are free: charge was at submit.
        assert hierarchy.clock.elapsed == charged
        stats = rd.engine_stats()
        assert stats.prefetch_issued == 3
        assert stats.prefetch_useful == 3
        assert stats.hits == 3

    def test_prefetch_unknown_keys_ignored(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"abc", 1)})
        assert rd.prefetch(["ghost", "also-ghost"]) == 0

    def test_prefetch_noop_when_cache_disabled(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"abc", 1)}, cache_bytes=0)
        before = hierarchy.clock.elapsed
        assert rd.prefetch(["k"]) == 0
        assert hierarchy.clock.elapsed == before

    def test_repeated_hints_are_free(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"abc", 1)})
        rd.prefetch(["k"])
        rd.engine.drain()
        before = hierarchy.clock.elapsed
        assert rd.prefetch(["k"]) == 0
        assert hierarchy.clock.elapsed == before


class TestChecksumVerification:
    def _corrupt(self, hierarchy, rd, key):
        rec = rd.inq(key)
        tier = hierarchy.tier(rec.tier)
        path = tier._path(rec.subfile)
        data = bytearray(path.read_bytes())
        data[rec.offset] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_payload_raises(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"payload-bytes", 1)})
        self._corrupt(hierarchy, rd, "k")
        with pytest.raises(BPFormatError, match="checksum mismatch"):
            rd.read("k")

    def test_verify_opt_out_returns_corrupt_bytes(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"payload-bytes", 1)})
        self._corrupt(hierarchy, rd, "k")
        blob = rd.read("k", verify=False)
        assert blob != b"payload-bytes" and len(blob) == len(b"payload-bytes")

    def test_dataset_wide_opt_out(self, hierarchy):
        rd = plain_dataset(
            hierarchy, {"k": (b"payload-bytes", 1)}, verify_checksums=False
        )
        self._corrupt(hierarchy, rd, "k")
        rd.read("k")  # no raise

    def test_read_many_verifies(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"payload-bytes", 1)})
        self._corrupt(hierarchy, rd, "k")
        with pytest.raises(BPFormatError, match="checksum mismatch"):
            rd.read_many(["k"])


class TestPipelinedProgressive:
    def test_pipelined_bit_identical_to_serial(self, tmp_path, dataset_inputs):
        mesh, field = dataset_inputs
        h_serial = two_tier_titan(
            tmp_path / "serial", fast_capacity=4 << 20, slow_capacity=1 << 33
        )
        encode(h_serial, mesh, field)
        serial_start = h_serial.clock.elapsed
        serial = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", h_serial)), "dpot"
        )
        serial_states = [s.field.copy() for s in serial.levels()]
        serial_cost = h_serial.clock.elapsed - serial_start

        h_pipe = two_tier_titan(
            tmp_path / "pipe", fast_capacity=4 << 20, slow_capacity=1 << 33
        )
        encode(h_pipe, mesh, field)
        elapsed_after_encode = h_pipe.clock.elapsed
        pipe = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", h_pipe)), "dpot", pipeline=True
        )
        pipe_states = [s.field.copy() for s in pipe.levels()]
        pipe_cost = h_pipe.clock.elapsed - elapsed_after_encode

        assert len(serial_states) == len(pipe_states)
        for a, b in zip(serial_states, pipe_states):
            np.testing.assert_array_equal(a, b)
        # The overlapped batch model makes the pipelined read cheaper in
        # simulated time (encode cost excluded from both sides).
        assert pipe_cost < serial_cost
        assert pipe.decoder.dataset.engine_stats().prefetch_useful > 0

    def test_pipeline_timings_include_prefetch_charge(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        reader = ProgressiveReader(
            CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot",
            pipeline=True,
        )
        before = hierarchy.clock.elapsed
        final = None
        for state in reader.levels():
            final = state
        charged = hierarchy.clock.elapsed - before
        # Timings accumulate across refinements; the cumulative io phase
        # accounts for every simulated second the pipeline charged
        # (prefetch cost folded into the issuing step).
        assert final.timings.io_seconds == pytest.approx(charged)

    def test_lookahead_validation(self, hierarchy, dataset_inputs):
        mesh, field = dataset_inputs
        encode(hierarchy, mesh, field)
        from repro.errors import RestorationError

        with pytest.raises(RestorationError):
            ProgressiveReader(
                CanopusDecoder(BPDataset.open("run", hierarchy)), "dpot",
                pipeline=True, lookahead=0,
            )


class TestEngineMisc:
    def test_stats_as_dict_keys(self):
        stats = EngineStats()
        d = stats.as_dict()
        assert {"hits", "misses", "bytes_from_tier", "prefetch_issued",
                "prefetch_useful", "batches"} <= set(d)

    def test_workers_validated(self, hierarchy):
        with pytest.raises(StorageError):
            RetrievalEngine(hierarchy, {}, workers=0)

    def test_engine_repr(self, hierarchy):
        rd = plain_dataset(hierarchy, {"k": (b"abc", 1)})
        assert "RangeCache" in repr(rd.engine)
