"""Tests for DecimationPlan: build, replay, serialization, and the cache."""

import numpy as np
import pytest

from repro.core import (
    DecimationPlan,
    LevelScheme,
    PlanCache,
    build_plan,
    get_plan_cache,
    mesh_fingerprint,
    plan_eligible,
    refactor,
)
from repro.errors import RefactoringError
from repro.mesh.generators import structured_rectangle
from repro.obs import trace_session


@pytest.fixture
def mesh():
    return structured_rectangle(25, 25, jitter=0.3, seed=11)


@pytest.fixture
def field(mesh):
    x, y = mesh.vertices[:, 0], mesh.vertices[:, 1]
    return np.sin(4 * x) * np.cos(3 * y) + 0.2 * x


class TestEligibility:
    def test_length_is_eligible(self):
        assert plan_eligible("length")

    def test_data_aware_and_callables_are_not(self):
        assert not plan_eligible("data_aware")
        assert not plan_eligible(lambda u, v: 0.0)


class TestFingerprint:
    def test_identical_content_same_fingerprint(self, mesh):
        clone = mesh.copy()
        assert mesh_fingerprint(mesh) == mesh_fingerprint(clone)

    def test_geometry_change_misses(self, mesh):
        moved = mesh.copy()
        v = np.array(moved.vertices)
        v[0, 0] += 1e-9
        from repro.mesh import TriangleMesh

        other = TriangleMesh(v, moved.triangles, validate=False)
        assert mesh_fingerprint(mesh) != mesh_fingerprint(other)


class TestPlanReplay:
    @pytest.mark.parametrize("method", ["serial", "batched"])
    def test_coarsen_matches_direct_refactor(self, mesh, field, method):
        scheme = LevelScheme(3)
        plan = build_plan(mesh, scheme, method=method)
        # use_plan_cache=False forces the decimate-with-fields loop, the
        # seed's original code path.
        direct = refactor(
            mesh, field, scheme, method=method, use_plan_cache=False
        )
        levels = plan.coarsen(field)
        assert len(levels) == scheme.num_levels
        for got, want in zip(levels, direct.levels):
            assert np.array_equal(got, want)

    def test_refactor_fields_returns_both(self, mesh, field):
        plan = build_plan(mesh, LevelScheme(3))
        levels, deltas = plan.refactor_fields(field)
        assert len(levels) == 3 and len(deltas) == 2
        # Deltas reconstruct the finer level exactly (delta definition).
        for lvl in (0, 1):
            est = plan.mappings[lvl].estimate(levels[lvl + 1])
            assert np.allclose(levels[lvl], est + deltas[lvl])

    def test_parallel_deltas_bit_identical_to_serial(self, mesh, field):
        plan = build_plan(mesh, LevelScheme(4))
        levels = plan.coarsen(field)
        serial = plan.deltas_for(levels, workers=None)
        pooled = plan.deltas_for(levels, workers=4)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a, b)

    def test_shape_mismatch_rejected(self, mesh):
        plan = build_plan(mesh, LevelScheme(3))
        with pytest.raises(RefactoringError, match="does not match"):
            plan.coarsen(np.zeros(7))


class TestSerialization:
    def test_bytes_round_trip(self, mesh, field):
        plan = build_plan(mesh, LevelScheme(3), method="batched")
        clone = DecimationPlan.from_bytes(plan.to_bytes())
        assert clone.scheme == plan.scheme
        assert clone.method == "batched"
        for got, want in zip(clone.coarsen(field), plan.coarsen(field)):
            assert np.array_equal(got, want)
        for a, b in zip(clone.meshes, plan.meshes):
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.triangles, b.triangles)

    def test_unknown_version_rejected(self, mesh):
        import io
        import json

        plan = build_plan(mesh, LevelScheme(2))
        blob = plan.to_bytes()
        with np.load(io.BytesIO(blob)) as npz:
            arrays = {k: npz[k] for k in npz.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 99
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        with pytest.raises(RefactoringError, match="version"):
            DecimationPlan.from_bytes(buf.getvalue())


class TestPlanCache:
    def test_hit_on_identical_mesh_content(self, mesh):
        cache = PlanCache()
        scheme = LevelScheme(3)
        p1 = cache.get_or_build(mesh, scheme)
        p2 = cache.get_or_build(mesh.copy(), scheme)
        assert p1 is p2
        assert cache.stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_distinct_config_misses(self, mesh):
        cache = PlanCache()
        scheme = LevelScheme(3)
        cache.get_or_build(mesh, scheme, method="serial")
        cache.get_or_build(mesh, scheme, method="batched")
        cache.get_or_build(mesh, LevelScheme(2), method="serial")
        assert cache.stats["misses"] == 3 and cache.stats["hits"] == 0

    def test_lru_eviction(self, mesh):
        cache = PlanCache(maxsize=1)
        cache.get_or_build(mesh, LevelScheme(2))
        cache.get_or_build(mesh, LevelScheme(3))
        assert len(cache) == 1
        cache.get_or_build(mesh, LevelScheme(2))  # evicted -> rebuild
        assert cache.stats["misses"] == 3

    def test_ineligible_priority_raises(self, mesh):
        with pytest.raises(RefactoringError, match="not plan-cacheable"):
            PlanCache().get_or_build(mesh, LevelScheme(2), priority="data_aware")

    def test_counters_on_tracer(self, mesh):
        cache = PlanCache()
        with trace_session(None) as tracer:
            cache.get_or_build(mesh, LevelScheme(2))
            cache.get_or_build(mesh, LevelScheme(2))
        snap = tracer.metrics.snapshot()
        assert snap["plan.cache.misses"] == 1
        assert snap["plan.cache.hits"] == 1

    def test_clear(self, mesh):
        cache = PlanCache()
        cache.get_or_build(mesh, LevelScheme(2))
        cache.clear()
        assert cache.stats == {"entries": 0, "hits": 0, "misses": 0}


class TestRefactorIntegration:
    def test_repeat_refactor_hits_process_cache(self, mesh, field):
        get_plan_cache().clear()
        scheme = LevelScheme(3)
        r1 = refactor(mesh, field, scheme)
        r2 = refactor(mesh, field * 2.0, scheme)
        assert get_plan_cache().stats["hits"] >= 1
        assert r1.plan is r2.plan
        # Same geometry products, independent data products.
        assert r1.meshes[-1] is r2.meshes[-1]
        assert np.array_equal(r2.levels[-1], r1.levels[-1] * 2.0)

    def test_plan_path_matches_uncached_direct(self, mesh, field):
        """The cached replay path must be bit-identical to a refactor
        that rebuilds geometry from scratch."""
        get_plan_cache().clear()
        scheme = LevelScheme(3)
        cached = refactor(mesh, field, scheme)
        plan = build_plan(mesh, scheme)
        explicit = refactor(mesh, field, scheme, plan=plan)
        for a, b in zip(cached.levels, explicit.levels):
            assert np.array_equal(a, b)
        for a, b in zip(cached.deltas, explicit.deltas):
            assert np.array_equal(a, b)

    def test_scheme_mismatch_rejected(self, mesh, field):
        plan = build_plan(mesh, LevelScheme(2))
        with pytest.raises(RefactoringError, match="plan was built for"):
            refactor(mesh, field, LevelScheme(3), plan=plan)

    def test_data_aware_bypasses_cache(self, mesh, field):
        get_plan_cache().clear()
        result = refactor(mesh, field, LevelScheme(2), priority="data_aware")
        assert result.plan is None
        assert get_plan_cache().stats["entries"] == 0
