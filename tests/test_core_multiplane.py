"""Unit tests for multi-plane (stacked 3-D variable) support."""

import numpy as np
import pytest

from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    apply_delta,
    build_mapping,
    compute_delta,
    refactor,
)
from repro.errors import RefactoringError
from repro.harness.experiment import stack_planes
from repro.io import BPDataset
from repro.mesh import decimate
from repro.mesh.generators import disk
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

P = 4


@pytest.fixture(scope="module")
def stacked():
    mesh = disk(600, seed=0)
    v = mesh.vertices
    planes = np.stack(
        [np.sin(3 * v[:, 0] + p) * np.cos(2 * v[:, 1]) for p in range(P)]
    )
    return mesh, planes


class TestMappingBroadcast:
    def test_estimate_planes(self, stacked):
        mesh, planes = stacked
        res = decimate(mesh, None, ratio=2)
        mapping = build_mapping(mesh, res.mesh)
        coarse = np.stack([res.mesh.vertices[:, 0] * (p + 1) for p in range(P)])
        est = mapping.estimate(coarse)
        assert est.shape == (P, mesh.num_vertices)
        # Each plane's estimate equals the 1-D estimate of that plane.
        for p in range(P):
            assert np.allclose(est[p], mapping.estimate(coarse[p]))

    def test_delta_roundtrip_planes(self, stacked):
        mesh, planes = stacked
        res = decimate(mesh, {str(p): planes[p] for p in range(P)}, ratio=2)
        coarse = np.stack([res.fields[str(p)] for p in range(P)])
        mapping = build_mapping(mesh, res.mesh)
        delta = compute_delta(planes, coarse, mapping)
        assert delta.shape == planes.shape
        restored = apply_delta(coarse, delta, mapping)
        assert np.allclose(restored, planes, atol=1e-12)


class TestRefactorPlanes:
    def test_levels_keep_plane_axis(self, stacked):
        mesh, planes = stacked
        result = refactor(mesh, planes, LevelScheme(3))
        for lvl, level in enumerate(result.levels):
            assert level.shape == (P, result.meshes[lvl].num_vertices)
        for lvl, delta in enumerate(result.deltas):
            assert delta.shape == (P, result.meshes[lvl].num_vertices)

    def test_exact_chain_planes(self, stacked):
        mesh, planes = stacked
        result = refactor(mesh, planes, LevelScheme(3))
        state = result.base_field
        for lvl in (1, 0):
            state = apply_delta(state, result.deltas[lvl], result.mappings[lvl])
        assert np.allclose(state, planes, atol=1e-12)

    def test_bad_shapes(self, stacked):
        mesh, planes = stacked
        with pytest.raises(RefactoringError):
            refactor(mesh, planes[:, :-1], LevelScheme(2))
        with pytest.raises(RefactoringError):
            refactor(mesh, planes[None], LevelScheme(2))  # 3-D array


class TestEncoderDecoderPlanes:
    def test_roundtrip(self, stacked, tmp_path):
        mesh, planes = stacked
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(
            h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"}
        )
        enc.encode("pl", "v", mesh, planes, LevelScheme(3))
        dec = CanopusDecoder(BPDataset.open("pl", h))
        base = dec.read_base("v")
        assert base.field.shape == (P, base.mesh.num_vertices)
        full = dec.restore_to("v", 0)
        assert full.field.shape == planes.shape
        rng = np.ptp(planes)
        assert np.abs(full.field - planes).max() <= 3e-4 * rng + 1e-12

    def test_plane_accessor(self, stacked, tmp_path):
        mesh, planes = stacked
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(h, codec_params={"tolerance": 1e-4, "mode": "relative"})
        enc.encode("pl", "v", mesh, planes, LevelScheme(2))
        dec = CanopusDecoder(BPDataset.open("pl", h))
        full = dec.restore_to("v", 0)
        p1 = full.plane(1)
        assert p1.shape == (mesh.num_vertices,)
        assert np.allclose(p1, full.field[1])

    def test_chunked_planes_roundtrip(self, stacked, tmp_path):
        mesh, planes = stacked
        h = two_tier_titan(tmp_path, fast_capacity=8 << 20, slow_capacity=1 << 33)
        enc = CanopusEncoder(
            h, codec_params={"tolerance": 1e-4, "mode": "relative"}, chunks=6
        )
        enc.encode("plc", "v", mesh, planes, LevelScheme(2))
        dec = CanopusDecoder(BPDataset.open("plc", h))
        full = dec.restore_to("v", 0)
        rng = np.ptp(planes)
        assert np.abs(full.field - planes).max() <= 2e-4 * rng + 1e-12


class TestStackPlanes:
    def test_identity_for_single_plane(self):
        ds = make_xgc1(scale=0.05)
        assert stack_planes(ds, 1) is ds.field

    def test_stack_shape_and_correlation(self):
        ds = make_xgc1(scale=0.05)
        stacked = stack_planes(ds, 8)
        assert stacked.shape == (8, ds.mesh.num_vertices)
        # Planes differ, but stay strongly correlated with the reference.
        for p in range(8):
            assert not np.array_equal(stacked[p], ds.field)
            corr = np.corrcoef(stacked[p], ds.field)[0, 1]
            assert corr > 0.95
