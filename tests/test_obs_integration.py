"""End-to-end tracing of the refactor → place → retrieve pipeline.

The acceptance scenario: a (small) Fig. 9 XGC1 workload — Canopus
encode, then pipelined progressive retrieval — runs under
``trace_session()`` and exports a Chrome trace containing refactor,
compress, placement, cache, and per-tier I/O spans with both wall-clock
and simulated durations.
"""

from __future__ import annotations

import json

import pytest

from repro.api import open_dataset, read_progressive, trace_session
from repro.core import CanopusEncoder, LevelScheme
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

SCALE = 0.2
LEVELS = 3


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    dataset = make_xgc1(scale=SCALE, seed=11)
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("obs-integration"),
        fast_capacity=64 << 20,
        slow_capacity=1 << 36,
    )
    chrome_path = tmp_path_factory.mktemp("obs-out") / "trace.json"
    encoder = CanopusEncoder(
        hierarchy, codec="zfp",
        codec_params={"tolerance": 1e-4, "mode": "relative"},
    )
    with trace_session(hierarchy, chrome_path=chrome_path) as tracer:
        encoder.encode(
            "xgc1-traced", dataset.variable, dataset.mesh, dataset.field,
            LevelScheme(LEVELS),
        )
        ds = open_dataset("xgc1-traced", hierarchy)
        reader = read_progressive(ds, dataset.variable, pipeline=True)
        for _state in reader.levels():
            pass
        ds.close()
    return tracer, chrome_path


def test_all_pipeline_categories_present(traced_run):
    tracer, _ = traced_run
    cats = {s.category for s in tracer.spans}
    assert {"refactor", "compress", "placement", "cache", "io"} <= cats


def test_every_span_has_both_clocks(traced_run):
    tracer, _ = traced_run
    assert tracer.spans
    for rec in tracer.spans:
        assert rec.wall_seconds >= 0.0
        assert rec.sim_seconds >= 0.0
    # Simulated time was actually charged somewhere.
    assert sum(s.sim_charged for s in tracer.spans) > 0.0


def test_per_tier_io_recorded(traced_run):
    tracer, _ = traced_run
    tiers = {r.tier for r in tracer.io_records}
    assert {"tmpfs", "lustre"} <= tiers
    for rec in tracer.io_records:
        assert rec.nbytes > 0 and rec.seconds > 0.0


def test_sim_charges_sum_to_clock_advance(traced_run):
    tracer, _ = traced_run
    charged = sum(s.sim_charged for s in tracer.spans)
    # Innermost-span attribution partitions the advance: charges land on
    # exactly one span each, so the per-span sum equals the clock total
    # observed during the session (everything here ran inside spans).
    assert charged == pytest.approx(tracer.clock.elapsed)


def test_chrome_export_is_loadable_and_complete(traced_run):
    _, chrome_path = traced_run
    doc = json.loads(chrome_path.read_text())
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]

    # Both clock processes are populated.
    assert {e["pid"] for e in xs} == {1, 2}

    # The acceptance span set, by category.
    cats = {e["cat"] for e in xs}
    assert {"refactor", "compress", "placement", "cache", "io"} <= cats

    # Per-tier transfer tracks exist for both tiers.
    track_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"tier tmpfs", "tier lustre"} <= track_names

    # Every span event carries both durations.
    for e in xs:
        assert "wall_seconds" in e["args"]
        assert "sim_seconds" in e["args"]
        assert e["dur"] >= 0

    # Named pipeline phases made it into the trace.
    names = {e["name"] for e in xs}
    assert "refactor.decimate" in names
    assert "dataset.place" in names
    assert "decode.read_base" in names


def test_engine_cache_counters_in_registry(traced_run):
    tracer, _ = traced_run
    # Codec byte counters accumulate in the tracer-scoped registry.
    snap = tracer.metrics.snapshot()
    encode_in = [
        v for k, v in snap.items()
        if k.startswith("codec.bytes_in") and "op=encode" in k
    ]
    assert encode_in and all(v > 0 for v in encode_in)


def test_restored_bits_unchanged_by_tracing(tmp_path):
    dataset = make_xgc1(scale=SCALE, seed=11)

    def run(workdir, traced):
        hierarchy = two_tier_titan(
            workdir, fast_capacity=64 << 20, slow_capacity=1 << 36
        )
        encoder = CanopusEncoder(
            hierarchy, codec="zfp",
            codec_params={"tolerance": 1e-4, "mode": "relative"},
        )
        if traced:
            with trace_session(hierarchy):
                encoder.encode(
                    "v", dataset.variable, dataset.mesh, dataset.field,
                    LevelScheme(LEVELS),
                )
                ds = open_dataset("v", hierarchy)
                reader = read_progressive(ds, dataset.variable)
                state = reader.refine_until(rms_tolerance=0.0, max_level=0)
                ds.close()
        else:
            encoder.encode(
                "v", dataset.variable, dataset.mesh, dataset.field,
                LevelScheme(LEVELS),
            )
            ds = open_dataset("v", hierarchy)
            reader = read_progressive(ds, dataset.variable)
            state = reader.refine_until(rms_tolerance=0.0, max_level=0)
            ds.close()
        return state.field

    import numpy as np

    a = run(tmp_path / "plain", traced=False)
    b = run(tmp_path / "traced", traced=True)
    np.testing.assert_array_equal(a, b)
