"""Durability harness: faults, failover, journal, repair, degraded serving.

The fault-matrix classes run every mode in
:data:`repro.storage.FAULT_MODES` by default; the CI fault-injection
matrix narrows a job to one mode via ``REPRO_FAULTS=<mode>`` (``|``
separates several).
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import StorageError
from repro.io import BPDataset, repair_backends, repair_dataset
from repro.io.fsck import check_dataset
from repro.service import CanopusService, ServiceClient, TenantConfig
from repro.service.loadgen import ServiceThread
from repro.simulations import make_xgc1
from repro.storage import (
    FAULT_MODES,
    FaultInjector,
    MemoryBackend,
    PlacementEngine,
    ProductSpec,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
    StorageHierarchy,
    StorageTier,
    inject_fault,
    kill_replica,
    make_backend,
    two_tier_titan,
)
from repro.storage.simclock import SimClock

_ENV_MODES = tuple(
    m for m in os.environ.get("REPRO_FAULTS", "").split("|") if m
)
for _m in _ENV_MODES:
    assert _m in FAULT_MODES, f"REPRO_FAULTS names unknown mode {_m!r}"
ACTIVE_MODES = _ENV_MODES or FAULT_MODES


def _replicated_sharded(tmp_path, *, chunk_size=8):
    return make_backend(
        "sharded", tmp_path, shards=2, replicas=2, chunk_size=chunk_size
    )


PAYLOADS = {
    "camp/base.bp": bytes(range(256)) * 3,
    "camp/delta1.bp": b"\xaa\x55" * 40,
    "tiny": b"x",
}


class TestFaultMatrix:
    """One replicated sharded store through every durable-damage mode."""

    @pytest.fixture(params=ACTIVE_MODES)
    def damaged(self, request, tmp_path):
        be = _replicated_sharded(tmp_path)
        be.put_many(PAYLOADS)
        description = inject_fault(be, request.param)
        return be, request.param, description

    def test_verify_reports_damage(self, damaged):
        be, mode, description = damaged
        assert description
        assert be.verify() != []

    def test_reads_survive_or_fail_loud(self, damaged):
        be, mode, _ = damaged
        if mode == "truncate_manifest":
            # All replicas hold the truncated manifest consistently;
            # nothing can serve it until repair rebuilds it from chunks.
            with pytest.raises(StorageError):
                be.get("camp/base.bp")
        else:
            # Replica loss and chunk corruption are routed around
            # transparently: every object stays bit-identical.
            for key, blob in PAYLOADS.items():
                assert be.get(key) == blob

    def test_repair_restores_full_redundancy(self, damaged):
        be, mode, _ = damaged
        actions = be.repair()
        assert actions, "repair() on damaged store must act"
        assert be.verify() == []
        assert not be.degraded
        for key, blob in PAYLOADS.items():
            assert be.get(key) == blob

    def test_unreplicated_drop_is_reported_not_hidden(self, tmp_path):
        be = make_backend("sharded", tmp_path, shards=2, chunk_size=4)
        be.put("v", b"q" * 16)
        inject_fault(be, "drop_substore")
        problems = be.verify()
        assert any("missing chunk" in p for p in problems)
        be.repair()
        # No surviving copy: the damage must still be reported.
        assert be.verify() != []


class TestReplicatedBackend:
    def test_failover_read_is_bit_identical_and_flags_degraded(self):
        be = ReplicatedBackend([MemoryBackend(), MemoryBackend()])
        be.put("k", b"payload-123")
        kill_replica(be, 0)
        assert be.get("k") == b"payload-123"
        assert be.degraded

    def test_read_repair_restores_lost_copy(self):
        reps = [MemoryBackend(), MemoryBackend()]
        be = ReplicatedBackend(reps)
        be.put("k", b"payload-123")
        kill_replica(be, 0)
        be.get("k")  # failover triggers read-repair
        assert reps[0].get("k") == b"payload-123"

    def test_losing_unread_replica_does_not_flag_degraded(self):
        be = ReplicatedBackend([MemoryBackend(), MemoryBackend()])
        be.put("k", b"v")
        kill_replica(be, 1)  # reads keep hitting replica 0
        assert be.get("k") == b"v"
        assert not be.degraded
        assert any("replica 1" in p for p in be.verify())

    def test_anti_entropy_sweep_without_prior_read(self):
        reps = [MemoryBackend(), MemoryBackend(), MemoryBackend()]
        be = ReplicatedBackend(reps)
        be.put("a", b"123")
        be.put("b", b"45678")
        kill_replica(be, 1)
        actions = be.repair()
        assert any("re-replicated" in a for a in actions)
        assert be.verify() == []
        assert reps[1].get("a") == b"123"

    def test_crc_corruption_triggers_failover(self):
        reps = [MemoryBackend(), MemoryBackend()]
        be = ReplicatedBackend(reps)
        be.put("k", b"payload-123")
        blob = bytearray(reps[0].get("k"))
        blob[0] ^= 0xFF
        reps[0].put("k", bytes(blob))  # sidecar now stale -> CRC trips
        assert be.get("k") == b"payload-123"
        assert be.degraded
        be.repair()
        assert not be.degraded

    def test_all_replicas_lost_raises(self):
        be = ReplicatedBackend([MemoryBackend(), MemoryBackend()])
        be.put("k", b"v")
        for rep in be.replicas:
            for name, _ in rep.list_objects():
                rep.delete(name)
        with pytest.raises(StorageError, match="no replica survives|no object"):
            be.get("k")


class TestWriteAheadJournal:
    class _DropPuts(MemoryBackend):
        """Sub-store whose puts start failing after ``budget`` calls."""

        def __init__(self, budget):
            super().__init__()
            self.budget = budget

        def put(self, key, data):
            if self.budget <= 0:
                raise StorageError("injected crash: sub-store write lost")
            self.budget -= 1
            return super().put(key, data)

    def test_interrupted_put_is_detected_and_collected(self):
        crashy = self._DropPuts(budget=2)  # WAL + first chunk, then die
        be = ShardedBackend([crashy, MemoryBackend()], chunk_size=4)
        with pytest.raises(StorageError):
            be.put("obj", b"0123456789ab")
        crashy.budget = 10**6
        problems = be.verify()
        assert any("interrupted put" in p for p in problems)
        actions = be.repair()
        assert actions
        assert be.verify() == []
        assert not be.exists("obj")  # partial new object collected

    def test_interrupted_overwrite_keeps_old_object(self):
        subs = [MemoryBackend(), MemoryBackend()]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"OLDOLDOL")  # 2 chunks
        # Simulate a crash after journal write but before any new chunk:
        # plant the WAL for an interrupted 3-chunk overwrite by hand.
        wal = {
            "size": 12, "chunk_size": 4, "chunks": 3,
            "crc32": 0, "old_chunks": 2,
        }
        subs[0].put("obj#wal", json.dumps(wal).encode())
        assert any("interrupted put" in p for p in be.verify())
        be.repair()
        assert be.verify() == []
        assert be.get("obj") == b"OLDOLDOL"

    def test_completed_put_with_lingering_wal_rolls_forward(self):
        subs = [MemoryBackend(), MemoryBackend()]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"NEWDATA!")
        # Crash after everything but the WAL delete: re-plant the WAL.
        manifest = json.loads(subs[0].get("obj#meta"))
        subs[0].put(
            "obj#wal",
            json.dumps(dict(manifest, old_chunks=0)).encode(),
        )
        be.repair()
        assert be.verify() == []
        assert be.get("obj") == b"NEWDATA!"

    def test_journal_off_skips_wal_writes(self):
        sub = MemoryBackend()
        be = ShardedBackend([sub], chunk_size=4, journal=False)
        be.put("obj", b"0123456789")
        assert not any(
            name.endswith("#wal") for name, _ in sub.list_objects()
        )

    def test_rebuilds_manifest_from_surviving_chunks(self, tmp_path):
        be = make_backend("sharded", tmp_path, shards=2, chunk_size=4)
        payload = bytes(range(14))
        be.put("obj", payload)
        inject_fault(be, "truncate_manifest")
        with pytest.raises(StorageError):
            be.get("obj")
        actions = be.repair()
        assert any("manifest" in a for a in actions)
        assert be.get("obj") == payload
        assert be.verify() == []


class TestRemoteBackend:
    def test_transient_faults_are_retried_with_simulated_backoff(self):
        faults = FaultInjector().fail("get", times=2)
        clock = SimClock()
        be = RemoteBackend(
            MemoryBackend(), fault_injector=faults, clock=clock,
            backoff_seconds=0.002,
        )
        be.put("k", b"v" * 100)
        before = clock.elapsed
        assert be.get("k") == b"v" * 100
        assert faults.injected == 2
        # Two backoffs (2ms + 4ms) were charged, never slept.
        backoff = sum(
            e.seconds for e in clock.events if e.label.startswith("backoff")
        )
        assert backoff == pytest.approx(0.006)
        assert clock.elapsed > before

    def test_exhausted_retries_surface_storage_error(self):
        faults = FaultInjector().fail("get", times=99)
        be = RemoteBackend(MemoryBackend(), fault_injector=faults, retries=2)
        be.put("k", b"v")
        with pytest.raises(StorageError, match="after 2 retries"):
            be.get("k")

    def test_fault_scoping_by_key_substring(self):
        faults = FaultInjector().fail("get", times=99, key_substring="hot")
        be = RemoteBackend(MemoryBackend(), fault_injector=faults, retries=0)
        be.put("hot/obj", b"a")
        be.put("cold/obj", b"b")
        assert be.get("cold/obj") == b"b"
        with pytest.raises(StorageError):
            be.get("hot/obj")

    def test_network_charges_scale_with_bytes(self):
        clock = SimClock()
        be = RemoteBackend(
            MemoryBackend(), clock=clock,
            network_bandwidth=1_000_000, network_latency=0.001,
        )
        be.put("k", b"x" * 500_000)
        assert clock.elapsed == pytest.approx(0.001 + 0.5)
        before = clock.elapsed
        be.get("k")
        assert clock.elapsed - before == pytest.approx(0.001 + 0.5)

    def test_batch_ops_pay_latency_once(self):
        clock = SimClock()
        be = RemoteBackend(
            MemoryBackend(), clock=clock,
            network_bandwidth=1 << 30, network_latency=0.010,
        )
        be.put_many({f"k{i}": b"z" * 10 for i in range(8)})
        # One batched round-trip, not eight.
        latency_events = [e for e in clock.events if e.seconds >= 0.010]
        assert len(latency_events) == 1

    def test_uncharged_context_suppresses_clock(self):
        clock = SimClock()
        be = RemoteBackend(MemoryBackend(), clock=clock)
        be.put("k", b"v" * 64)
        before = clock.elapsed
        with be.uncharged():
            assert be.get("k") == b"v" * 64
        assert clock.elapsed == before

    def test_tier_peeks_over_remote_stay_uncharged(self, tmp_path):
        tier = StorageTier(
            "t", "ssd", 1 << 20, backend=RemoteBackend(MemoryBackend())
        )
        tier.write("a.bin", bytes(range(64)))
        before = tier.clock.elapsed
        assert tier.peek_range("a.bin", 10, 4) == bytes(range(10, 14))
        assert tier.peek_many([("a.bin", 0, 8)]) == [bytes(range(8))]
        assert tier.clock.elapsed == before


class TestPlacementDurability:
    def _hierarchy(self):
        clock = SimClock()
        fast = StorageTier(
            "fast", "dram_tmpfs", 1 << 20, None, clock,
            backend=MemoryBackend(),
        )
        slow = StorageTier(
            "slow", "lustre", 1 << 30, None, clock,
            backend=ReplicatedBackend([MemoryBackend(), MemoryBackend()]),
        )
        return StorageHierarchy([fast, slow])

    def test_replication_factor_is_a_tier_property(self):
        h = self._hierarchy()
        assert h.tier("fast").replication_factor == 1
        assert h.tier("slow").replication_factor == 2

    def test_zero_weight_ignores_durability(self):
        h = self._hierarchy()
        plan = PlacementEngine(h).plan(
            [ProductSpec("p", 4096, weight=1.0, replicas=2)]
        )
        assert plan.tier_of("p") == "fast"

    def test_durability_weight_steers_to_replicated_tier(self):
        h = self._hierarchy()
        plan = PlacementEngine(h).plan(
            [ProductSpec("p", 4096, weight=1.0, replicas=2)],
            durability_weight=1e6,
        )
        assert plan.tier_of("p") == "slow"
        note = next(
            n for t, _, n in plan.decisions[0].considered if t == "fast"
        )
        assert "under-replicated" in note

    def test_satisfied_replicas_pay_no_risk(self):
        h = self._hierarchy()
        plan = PlacementEngine(h).plan(
            [ProductSpec("p", 4096, weight=1.0, replicas=1)],
            durability_weight=1e6,
        )
        assert plan.tier_of("p") == "fast"


def _encode_campaign(root, **titan_kwargs):
    src = make_xgc1(scale=0.15)
    h = two_tier_titan(root, fast_capacity=48 << 20, **titan_kwargs)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-5, "mode": "relative"},
    )
    enc.encode("camp", "dpot", src.mesh, src.field, LevelScheme(3))
    return src


def _reopen(root, **titan_kwargs):
    h = two_tier_titan(root, fast_capacity=48 << 20, **titan_kwargs)
    return BPDataset.open("camp", h)


class TestFsckRepairEndToEnd:
    KW = {"backend": "sharded", "shards": 2, "chunk_size": 64 << 10,
          "replicas": 2}

    @pytest.mark.parametrize("mode", ACTIVE_MODES)
    def test_campaign_repairs_to_healthy(self, tmp_path, mode):
        _encode_campaign(tmp_path, **self.KW)
        ds = _reopen(tmp_path, **self.KW)
        for tier in ds.hierarchy.tiers:
            if tier.backend.list_objects():
                inject_fault(tier.backend, mode)
                break
        result = repair_dataset(ds)
        assert result.repairs, "damage must produce repair actions"
        assert result.healthy, result.report()
        assert "FIXED" in result.report()
        # Full redundancy restored below the catalog too.
        for tier in ds.hierarchy.tiers:
            assert tier.backend.verify() == []

    def test_repair_works_without_opening_dataset(self, tmp_path):
        _encode_campaign(tmp_path, **self.KW)
        h = two_tier_titan(tmp_path, fast_capacity=48 << 20, **self.KW)
        damaged = [
            t for t in h.tiers if t.backend.list_objects()
        ]
        kill_replica(damaged[0].backend)
        actions = repair_backends(h)
        assert actions
        assert all(t.backend.verify() == [] for t in h.tiers)
        # The catalog opens fine afterwards and checks clean.
        assert check_dataset(
            BPDataset.open("camp", h)
        ).healthy

    def test_restore_bit_identical_with_replica_down(self, tmp_path):
        from repro.core.decode_engine import DecodeEngine

        _encode_campaign(tmp_path, **self.KW)
        reference = DecodeEngine(_reopen(tmp_path, **self.KW)).restore(
            "dpot", 0
        ).field

        ds = _reopen(tmp_path, **self.KW)
        for tier in ds.hierarchy.tiers:
            if tier.backend.list_objects():
                kill_replica(tier.backend, 0)
        degraded = DecodeEngine(ds).restore("dpot", 0).field
        np.testing.assert_array_equal(reference, degraded)


@pytest.fixture(scope="module")
def degraded_service(tmp_path_factory):
    root = tmp_path_factory.mktemp("durasvc")
    src = make_xgc1(scale=0.15)
    kw = {"backend": "sharded", "shards": 2, "chunk_size": 64 << 10,
          "replicas": 2}
    h = two_tier_titan(root, fast_capacity=48 << 20, **kw)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-5, "mode": "relative"},
    )
    enc.encode("camp", "dpot", src.mesh, src.field, LevelScheme(3))

    get_restored_cache().clear()
    get_geometry_cache().clear()
    h = two_tier_titan(root, fast_capacity=48 << 20, **kw)
    svc = CanopusService(
        h, tenants=[TenantConfig(name="t", token="tok")], workers=2,
        executor_workers=2,
    )
    with ServiceThread(svc):
        yield svc, h, root, kw
    get_restored_cache().clear()
    get_geometry_cache().clear()


class TestServiceDegradedMode:
    def _drive(self, coro):
        return asyncio.run(coro)

    def _raw_keys(self, svc):
        handle = svc.datanode.session.open("camp")
        return list(handle.keys())

    def test_raw_reads_survive_replica_loss(self, degraded_service):
        svc, h, root, kw = degraded_service
        keys = self._raw_keys(svc)
        cached_key, fresh_key = keys[0], keys[1]

        async def read(key):
            async with ServiceClient(svc.host, svc.port, token="tok") as c:
                return await c.read_raw("camp", key)

        # Healthy references: cached_key through the service (warming
        # its block cache), fresh_key via an independent local handle so
        # the service engine has never touched its bytes.
        healthy_cached, _ = self._drive(read(cached_key))
        local = BPDataset.open(
            "camp", two_tier_titan(root, fast_capacity=48 << 20, **kw)
        )
        healthy_fresh = local.read(fresh_key, verify=False)

        for tier in h.tiers:
            if tier.backend.list_objects():
                kill_replica(tier.backend, 0)

        # The never-read key must come back bit-identical via replica
        # failover — that read is what flips the degraded flag.
        degraded_fresh, _ = self._drive(read(fresh_key))
        assert degraded_fresh == healthy_fresh
        degraded_cached, _ = self._drive(read(cached_key))
        assert degraded_cached == healthy_cached

        async def metrics():
            async with ServiceClient(svc.host, svc.port, token="tok") as c:
                return await c.metrics()

        storage = self._drive(metrics())["datanode"]["storage"]
        assert storage["degraded_tiers"], storage
        assert set(storage["replication"].values()) == {2}

    def test_503_only_when_no_replica_survives(self, degraded_service):
        svc, h, _root, _kw = degraded_service
        # A key the engine has never read: the block cache must not mask
        # total storage loss.
        key = self._raw_keys(svc)[-1]
        for tier in h.tiers:
            for index in (0, 1):
                try:
                    kill_replica(tier.backend, index)
                except StorageError:
                    pass  # replica already empty

        async def read():
            async with ServiceClient(svc.host, svc.port, token="tok") as c:
                return await c.read_raw("camp", key)

        with pytest.raises(StorageError):
            self._drive(read())
