"""Tests for the BP container format and the catalog index."""

import pytest

from repro.errors import BPFormatError, VariableNotFoundError
from repro.io.bp import BPReader, BPWriter
from repro.io.metadata import Catalog, VariableRecord


class TestBPWriterReader:
    def test_roundtrip(self):
        w = BPWriter()
        w.add("a", b"payload-a")
        w.add("b", b"payload-bb")
        data = w.finalize()
        r = BPReader(data)
        assert r.keys() == ["a", "b"]
        assert r.read("a") == b"payload-a"
        assert r.read("b") == b"payload-bb"

    def test_offsets_usable_for_range_reads(self):
        w = BPWriter()
        w.add("x", b"0123")
        w.add("y", b"456789")
        data = w.finalize()
        off, length = BPReader(data).offset_of("y")
        assert data[off : off + length] == b"456789"

    def test_duplicate_key_rejected(self):
        w = BPWriter()
        w.add("a", b"1")
        with pytest.raises(BPFormatError):
            w.add("a", b"2")

    def test_add_after_finalize_rejected(self):
        w = BPWriter()
        w.add("a", b"1")
        w.finalize()
        with pytest.raises(BPFormatError):
            w.add("b", b"2")

    def test_nbytes_matches_finalized_size(self):
        w = BPWriter()
        w.add("a", b"x" * 123)
        predicted = w.nbytes
        assert predicted == len(w.finalize())

    def test_empty_container(self):
        data = BPWriter().finalize()
        assert BPReader(data).keys() == []

    def test_missing_block(self):
        data = BPWriter().finalize()
        with pytest.raises(VariableNotFoundError):
            BPReader(data).read("nope")

    def test_contains(self):
        w = BPWriter()
        w.add("a", b"1")
        r = BPReader(w.finalize())
        assert "a" in r and "b" not in r

    def test_bad_header(self):
        with pytest.raises(BPFormatError):
            BPReader(b"JUNKJUNKJUNKJUNKJUNK")

    def test_bad_trailer(self):
        w = BPWriter()
        w.add("a", b"1")
        data = bytearray(w.finalize())
        data[-1] ^= 0xFF
        with pytest.raises(BPFormatError):
            BPReader(bytes(data))

    def test_truncated_file(self):
        w = BPWriter()
        w.add("a", b"1" * 100)
        data = w.finalize()
        with pytest.raises(BPFormatError):
            BPReader(data[:8])

    def test_binary_payload_integrity(self):
        blob = bytes(range(256)) * 10
        w = BPWriter()
        w.add("bin", blob)
        assert BPReader(w.finalize()).read("bin") == blob


class TestCatalog:
    def make_record(self, key="dpot/L2", **kw):
        defaults = dict(
            key=key, tier="tmpfs", subfile="ds.tmpfs.bp", offset=4,
            length=100, codec="zfp", kind="base", level=2, count=500,
        )
        defaults.update(kw)
        return VariableRecord(**defaults)

    def test_add_get(self):
        cat = Catalog("ds")
        rec = self.make_record()
        cat.add(rec)
        assert cat.get("dpot/L2") is rec
        assert "dpot/L2" in cat
        assert cat.keys() == ["dpot/L2"]

    def test_duplicate_rejected(self):
        cat = Catalog("ds")
        cat.add(self.make_record())
        with pytest.raises(BPFormatError):
            cat.add(self.make_record())

    def test_missing_raises(self):
        with pytest.raises(VariableNotFoundError):
            Catalog("ds").get("ghost")

    def test_select_by_kind_level(self):
        cat = Catalog("ds")
        cat.add(self.make_record("dpot/L2", kind="base", level=2))
        cat.add(self.make_record("dpot/delta1-2", kind="delta", level=1))
        cat.add(self.make_record("dpot/delta0-1", kind="delta", level=0))
        assert len(cat.select(kind="delta")) == 2
        assert cat.select(kind="delta", level=1)[0].key == "dpot/delta1-2"
        assert len(cat.select()) == 3

    def test_json_roundtrip(self):
        cat = Catalog("ds")
        cat.attrs["mesh"] = "annulus"
        cat.add(self.make_record(attrs={"tolerance": 1e-4}))
        blob = cat.to_json()
        cat2 = Catalog.from_json(blob)
        assert cat2.name == "ds"
        assert cat2.attrs == {"mesh": "annulus"}
        rec = cat2.get("dpot/L2")
        assert rec.tier == "tmpfs"
        assert rec.attrs["tolerance"] == 1e-4

    def test_corrupt_json(self):
        with pytest.raises(BPFormatError):
            Catalog.from_json(b"{broken")
        with pytest.raises(BPFormatError):
            Catalog.from_json(b'{"version": 99, "name": "x", "records": []}')
