"""Tests for the bit-packing primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.bitstream import (
    BitReader,
    BitWriter,
    pack_uint,
    unpack_uint,
    unpack_uint_segments,
)
from repro.errors import BitstreamError


class TestPackUnpack:
    def test_roundtrip_simple(self):
        vals = np.array([1, 2, 3, 7], dtype=np.uint64)
        packed = pack_uint(vals, 3)
        out = unpack_uint(packed, 4, 3)
        assert np.array_equal(out, vals)

    def test_width_zero(self):
        assert pack_uint(np.array([0, 0], dtype=np.uint64), 0).size == 0
        assert np.array_equal(unpack_uint(np.zeros(0, np.uint8), 3, 0), np.zeros(3))

    def test_empty_values(self):
        assert pack_uint(np.zeros(0, dtype=np.uint64), 5).size == 0

    def test_overflow_detected(self):
        with pytest.raises(BitstreamError):
            pack_uint(np.array([8], dtype=np.uint64), 3)

    def test_width_64(self):
        vals = np.array([2**64 - 1, 0, 12345], dtype=np.uint64)
        packed = pack_uint(vals, 64)
        assert np.array_equal(unpack_uint(packed, 3, 64), vals)

    def test_bad_width(self):
        with pytest.raises(BitstreamError):
            pack_uint(np.array([1], dtype=np.uint64), 65)
        with pytest.raises(BitstreamError):
            unpack_uint(np.zeros(8, np.uint8), 1, -1)

    def test_bit_offset(self):
        a = pack_uint(np.array([5], dtype=np.uint64), 3)
        b = pack_uint(np.array([9, 2], dtype=np.uint64), 4)
        combined = np.concatenate([a, b])
        # a occupies 3 bits then pads to byte boundary (8 bits total).
        out = unpack_uint(combined, 2, 4, bit_offset=8)
        assert list(out) == [9, 2]

    def test_underflow_raises(self):
        packed = pack_uint(np.array([1, 2], dtype=np.uint64), 4)
        with pytest.raises(BitstreamError):
            unpack_uint(packed, 5, 4)

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 64),
        n=st.integers(1, 50),
        seed=st.integers(0, 2**31),
    )
    def test_roundtrip_property(self, width, n, seed):
        rng = np.random.default_rng(seed)
        hi = 2**width if width < 64 else 2**64
        vals = rng.integers(0, hi, size=n, dtype=np.uint64, endpoint=False)
        packed = pack_uint(vals, width)
        assert len(packed) == (n * width + 7) // 8
        assert np.array_equal(unpack_uint(packed, n, width), vals)


class TestUnpackSegments:
    def test_matches_per_segment_unpack(self):
        rng = np.random.default_rng(3)
        parts = []
        segments = []
        bitpos = 0
        for width in (3, 7, 13, 5, 13, 64):
            n = int(rng.integers(1, 40))
            hi = 2**width if width < 64 else 2**64
            vals = rng.integers(0, hi, size=n, dtype=np.uint64)
            parts.append(pack_uint(vals, width))
            segments.append((bitpos, n, width))
            # byte-aligned joints, as the ZFP-style group layout produces
            bitpos += (n * width + 7) // 8 * 8
        stream = np.concatenate(parts)
        got = unpack_uint_segments(stream, segments)
        for (off, n, width), out in zip(segments, got):
            assert np.array_equal(out, unpack_uint(stream, n, width, off))

    def test_empty_and_zero_width_segments(self):
        assert unpack_uint_segments(np.zeros(4, np.uint8), []) == []
        out = unpack_uint_segments(
            np.zeros(4, np.uint8), [(0, 0, 5), (0, 3, 0)]
        )
        assert out[0].size == 0
        assert np.array_equal(out[1], np.zeros(3, dtype=np.uint64))

    def test_underflow_raises(self):
        with pytest.raises(BitstreamError):
            unpack_uint_segments(np.zeros(1, np.uint8), [(0, 4, 5)])

    def test_bad_width_raises(self):
        with pytest.raises(BitstreamError):
            unpack_uint_segments(np.zeros(8, np.uint8), [(0, 1, 65)])


class TestWriterReader:
    def test_scalar_roundtrip(self):
        w = BitWriter()
        w.write_uint(5, 8)
        w.write_uint(1000, 16)
        r = BitReader(w.getvalue())
        assert r.read_uint(8) == 5
        assert r.read_uint(16) == 1000

    def test_array_roundtrip(self):
        w = BitWriter()
        vals = np.arange(10, dtype=np.uint64)
        w.write_array(vals, 8)
        r = BitReader(w.getvalue())
        assert np.array_equal(r.read_array(10, 8), vals)

    def test_unaligned_segments(self):
        w = BitWriter()
        w.write_uint(3, 3)
        w.write_uint(100, 7)
        w.write_array(np.array([1, 2, 3], dtype=np.uint64), 5)
        blob = w.getvalue()
        r = BitReader(blob)
        assert r.read_uint(3) == 3
        assert r.read_uint(7) == 100
        assert list(r.read_array(3, 5)) == [1, 2, 3]

    def test_bit_position_tracking(self):
        w = BitWriter()
        w.write_uint(1, 13)
        assert w.bit_position == 13
        r = BitReader(w.getvalue())
        r.read_uint(13)
        assert r.bit_position == 13

    def test_skip_and_remaining(self):
        w = BitWriter()
        w.write_uint(0xFF, 8)
        w.write_uint(0xAB, 8)
        r = BitReader(w.getvalue())
        r.skip(8)
        assert r.read_uint(8) == 0xAB
        assert r.bits_remaining == 0

    def test_skip_past_end(self):
        r = BitReader(b"\x00")
        with pytest.raises(BitstreamError):
            r.skip(9)

    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""
