"""Tests for the pluggable object-store backends (repro.storage.backend)."""

import json
import threading

import pytest

from repro.errors import CapacityError, StorageError
from repro.storage import (
    BACKEND_KINDS,
    FilesystemBackend,
    MemoryBackend,
    ObjectStore,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
    StorageTier,
    make_backend,
)


def _make(kind, tmp_path):
    if kind == "filesystem":
        return FilesystemBackend(tmp_path / "fs")
    if kind == "memory":
        return MemoryBackend()
    if kind == "sharded":
        return ShardedBackend(
            [MemoryBackend() for _ in range(3)], chunk_size=16
        )
    if kind == "remote":
        return RemoteBackend(MemoryBackend())
    if kind == "replicated":
        return ReplicatedBackend([MemoryBackend() for _ in range(2)])
    raise AssertionError(f"unknown backend kind {kind!r}")


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path):
    return _make(request.param, tmp_path)


class TestObjectStoreContract:
    """Behaviour every backend must share."""

    def test_put_get_roundtrip(self, backend):
        assert backend.put("a.bin", b"hello") == 5
        assert backend.get("a.bin") == b"hello"
        assert backend.exists("a.bin")
        assert backend.size("a.bin") == 5

    def test_overwrite(self, backend):
        backend.put("a.bin", b"x" * 40)
        backend.put("a.bin", b"short")
        assert backend.get("a.bin") == b"short"
        assert backend.size("a.bin") == 5

    def test_get_range(self, backend):
        backend.put("a.bin", bytes(range(64)))
        assert backend.get_range("a.bin", 0, 64) == bytes(range(64))
        assert backend.get_range("a.bin", 10, 30) == bytes(range(10, 40))
        assert backend.get_range("a.bin", 63, 1) == b"\x3f"
        assert backend.get_range("a.bin", 5, 0) == b""

    def test_get_range_out_of_bounds(self, backend):
        backend.put("a.bin", b"abc")
        for off, length in [(0, 4), (-1, 2), (2, -1), (4, 1)]:
            with pytest.raises(StorageError):
                backend.get_range("a.bin", off, length)

    def test_missing_key(self, backend):
        for op in (backend.get, backend.size, backend.delete):
            with pytest.raises(StorageError):
                op("ghost")
        with pytest.raises(StorageError):
            backend.get_range("ghost", 0, 1)
        assert not backend.exists("ghost")

    def test_delete(self, backend):
        backend.put("a.bin", b"data")
        backend.delete("a.bin")
        assert not backend.exists("a.bin")
        assert backend.list_objects() == []

    def test_list_objects_sorted(self, backend):
        backend.put("b", b"22")
        backend.put("a", b"1")
        backend.put("c", b"333")
        assert backend.list_objects() == [("a", 1), ("b", 2), ("c", 3)]

    def test_put_many_returns_total(self, backend):
        total = backend.put_many({"x": b"12", "y": b"345"})
        assert total == 5
        assert backend.get("x") == b"12"
        assert backend.get("y") == b"345"

    def test_get_many_preserves_order(self, backend):
        backend.put("a", bytes(range(40)))
        backend.put("b", b"zz" * 20)
        blobs = backend.get_many([("b", 0, 2), ("a", 30, 10), ("a", 0, 1)])
        assert blobs == [b"zz", bytes(range(30, 40)), b"\x00"]

    def test_empty_object(self, backend):
        backend.put("empty", b"")
        assert backend.size("empty") == 0
        assert backend.get("empty") == b""

    def test_verify_clean(self, backend):
        backend.put("a", b"x" * 100)
        backend.put("b", b"y" * 5)
        assert backend.verify() == []

    def test_nested_keys(self, backend):
        backend.put("run/sub/a.bp", b"deep")
        assert backend.get("run/sub/a.bp") == b"deep"
        assert ("run/sub/a.bp", 4) in backend.list_objects()


class TestFilesystemBackend:
    def test_persists_across_handles(self, tmp_path):
        FilesystemBackend(tmp_path).put("a", b"kept")
        assert FilesystemBackend(tmp_path).get("a") == b"kept"

    def test_key_escape_rejected(self, tmp_path):
        be = FilesystemBackend(tmp_path / "root")
        with pytest.raises(StorageError):
            be.put("../escape", b"x")


class TestMemoryBackend:
    def test_contents_die_with_instance(self):
        MemoryBackend().put("a", b"x")
        assert not MemoryBackend().exists("a")

    def test_put_copies_input(self):
        be = MemoryBackend()
        buf = bytearray(b"mutable")
        be.put("a", buf)
        buf[0] = 0
        assert be.get("a") == b"mutable"

    def test_get_range_past_end_raises_not_truncates(self):
        # Pins the contract: an out-of-bounds range is a StorageError,
        # never a silent Python-slice short read.
        be = MemoryBackend()
        be.put("a", b"0123456789")
        with pytest.raises(StorageError, match="range"):
            be.get_range("a", 8, 5)
        with pytest.raises(StorageError, match="range"):
            be.get_range("a", 10, 1)

    def test_get_range_negative_offset_and_length_raise(self):
        be = MemoryBackend()
        be.put("a", b"0123456789")
        with pytest.raises(StorageError):
            be.get_range("a", -2, 3)
        with pytest.raises(StorageError):
            be.get_range("a", 3, -2)


class _CountingStore(MemoryBackend):
    """Memory sub-store that counts batched calls."""

    def __init__(self):
        super().__init__()
        self.get_many_calls = 0
        self.put_many_calls = 0

    def get_many(self, requests):
        self.get_many_calls += 1
        return super().get_many(requests)

    def put_many(self, items):
        self.put_many_calls += 1
        return super().put_many(items)


class TestShardedBackend:
    def test_chunk_layout(self):
        subs = [MemoryBackend() for _ in range(3)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"0123456789ab")  # 3 chunks
        assert subs[0].get("obj#000000") == b"0123"
        assert subs[1].get("obj#000001") == b"4567"
        assert subs[2].get("obj#000002") == b"89ab"
        manifest = json.loads(subs[0].get("obj#meta"))
        assert manifest["size"] == 12
        assert manifest["chunks"] == 3

    def test_range_across_chunk_boundary(self):
        be = ShardedBackend([MemoryBackend() for _ in range(2)], chunk_size=8)
        payload = bytes(range(50))
        be.put("obj", payload)
        for off, length in [(0, 50), (6, 10), (7, 1), (8, 8), (15, 20)]:
            assert be.get_range("obj", off, length) == payload[off:off + length]

    def test_batched_get_one_call_per_substore(self):
        subs = [_CountingStore() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 32)  # 8 chunks, 4 per sub-store
        subs[0].get_many_calls = subs[1].get_many_calls = 0
        be.get("obj")
        assert subs[0].get_many_calls == 1
        assert subs[1].get_many_calls == 1

    def test_batched_put_one_call_per_substore(self):
        subs = [_CountingStore() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 32)
        assert subs[0].put_many_calls == 1
        assert subs[1].put_many_calls == 1

    def test_shrinking_overwrite_drops_stale_chunks(self):
        subs = [MemoryBackend() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 20)  # 5 chunks
        be.put("obj", b"y" * 6)  # 2 chunks
        assert be.get("obj") == b"y" * 6
        assert be.verify() == []
        all_chunks = [
            name for s in subs for name, _ in s.list_objects()
            if not name.endswith("#meta")
        ]
        assert sorted(all_chunks) == ["obj#000000", "obj#000001"]

    def test_verify_missing_chunk(self):
        subs = [MemoryBackend() for _ in range(3)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 12)
        subs[1].delete("obj#000001")
        problems = be.verify()
        assert any("missing chunk" in p and "obj" in p for p in problems)

    def test_verify_crc_over_chunk_boundaries(self):
        subs = [MemoryBackend() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"abcdefgh")
        # Swap two same-size chunks: every per-chunk size check passes,
        # only the whole-object CRC can notice.
        c0, c1 = subs[0].get("obj#000000"), subs[1].get("obj#000001")
        subs[0].put("obj#000000", c1)
        subs[1].put("obj#000001", c0)
        problems = be.verify()
        assert any("crc mismatch" in p for p in problems)

    def test_verify_orphaned_chunk(self):
        subs = [MemoryBackend() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 8)
        subs[1].put("ghost#000001", b"orphan")
        problems = be.verify()
        assert any("orphaned chunk" in p and "ghost" in p for p in problems)

    def test_verify_chunk_beyond_manifest_count(self):
        subs = [MemoryBackend() for _ in range(2)]
        be = ShardedBackend(subs, chunk_size=4)
        be.put("obj", b"x" * 8)  # 2 chunks
        subs[0].put("obj#000004", b"left")
        problems = be.verify()
        assert any("orphaned chunk" in p and "obj#000004" in p for p in problems)

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            ShardedBackend([])
        with pytest.raises(StorageError):
            ShardedBackend([MemoryBackend()], chunk_size=0)


class TestMakeBackend:
    def test_kinds(self, tmp_path):
        assert isinstance(
            make_backend("filesystem", tmp_path), FilesystemBackend
        )
        assert isinstance(make_backend("memory"), MemoryBackend)
        sharded = make_backend("sharded", tmp_path, shards=2, chunk_size=64)
        assert isinstance(sharded, ShardedBackend)
        assert len(sharded.substores) == 2
        assert sharded.chunk_size == 64
        assert (tmp_path / "shard0").is_dir()

    def test_in_memory_shards(self):
        sharded = make_backend("sharded", in_memory_shards=True, shards=3)
        assert all(isinstance(s, MemoryBackend) for s in sharded.substores)

    def test_errors(self, tmp_path):
        with pytest.raises(StorageError):
            make_backend("tape", tmp_path)
        with pytest.raises(StorageError):
            make_backend("filesystem")
        with pytest.raises(StorageError):
            make_backend("sharded")
        with pytest.raises(StorageError):
            make_backend("sharded", tmp_path, shards=0)
        with pytest.raises(StorageError):
            make_backend("replicated", tmp_path, replicas=0)
        with pytest.raises(StorageError):
            make_backend("remote")
        with pytest.raises(StorageError):
            make_backend("replicated")

    def test_remote_kind(self, tmp_path):
        be = make_backend("remote", tmp_path, network_latency=1e-3)
        assert isinstance(be, RemoteBackend)
        assert isinstance(be.inner, FilesystemBackend)
        assert be.network_latency == 1e-3
        be.put("a", b"x")
        assert be.get("a") == b"x"

    def test_replicated_kind_defaults_two_replicas(self, tmp_path):
        be = make_backend("replicated", tmp_path)
        assert isinstance(be, ReplicatedBackend)
        assert be.replication_factor == 2
        be.put("a", b"x")
        assert (tmp_path / "replica0" / "a").is_file()
        assert (tmp_path / "replica1" / "a").is_file()

    def test_sharded_with_replicas_mirrors_every_shard(self, tmp_path):
        be = make_backend(
            "sharded", tmp_path, shards=2, replicas=2, chunk_size=8
        )
        assert isinstance(be, ShardedBackend)
        assert all(
            isinstance(s, ReplicatedBackend) for s in be.substores
        )
        assert be.replication_factor == 2
        be.put("obj", b"q" * 20)
        assert be.get("obj") == b"q" * 20
        assert (tmp_path / "shard0" / "replica0").is_dir()
        assert (tmp_path / "shard1" / "replica1").is_dir()


class TestConcurrencyContract:
    """Thread-safety contract shared by every backend kind.

    Concurrent ``put_many`` rewrites of the *same* keys (same payloads,
    as the retrieval tier does when re-materialising hot products) must
    never expose torn objects to concurrent ``get_many`` readers, and
    concurrent writers on *distinct* keys must never interfere.
    """

    @pytest.fixture(params=BACKEND_KINDS)
    def backend(self, request, tmp_path):
        return _make(request.param, tmp_path)

    def _run(self, workers):
        errors = []

        def guard(fn):
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=guard, args=(fn,)) for fn in workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_same_key_rewrites_under_concurrent_readers(self, backend):
        payloads = {f"k{i}": bytes([65 + i]) * 37 for i in range(4)}
        backend.put_many(payloads)
        requests = [(k, 5, 17) for k in sorted(payloads)]
        expected = [payloads[k][5:22] for k in sorted(payloads)]

        def writer():
            for _ in range(20):
                backend.put_many(payloads)

        def reader():
            for _ in range(40):
                assert backend.get_many(requests) == expected

        self._run([writer] * 3 + [reader] * 3)
        for key, blob in payloads.items():
            assert backend.get(key) == blob
        assert backend.verify() == []

    def test_distinct_key_writers_do_not_interfere(self, backend):
        def writer(i):
            def go():
                for j in range(15):
                    backend.put(f"w{i}/obj", bytes([i]) * (29 + j))
            return go

        self._run([writer(i) for i in range(4)])
        for i in range(4):
            assert backend.get(f"w{i}/obj") == bytes([i]) * 43
        assert backend.verify() == []


class TestTierOverBackends:
    """StorageTier must be backend-agnostic: clock + capacity only."""

    @pytest.fixture(params=BACKEND_KINDS)
    def tier(self, request, tmp_path):
        return StorageTier(
            "t", "ssd", 1 << 20, backend=_make(request.param, tmp_path)
        )

    def test_write_read_roundtrip(self, tier):
        tier.write("x.bin", b"hello")
        assert tier.read("x.bin") == b"hello"
        assert tier.used_bytes == 5
        assert tier.file_size("x.bin") == 5

    def test_read_range_charges_only_range(self, tier):
        tier.write("x.bin", bytes(range(100)))
        assert tier.read_range("x.bin", 10, 5) == bytes(range(10, 15))
        assert tier.clock.events[-1].nbytes == 5

    def test_peek_many(self, tier):
        tier.write("a.bin", bytes(range(64)))
        tier.write("b.bin", b"q" * 10)
        before = tier.clock.elapsed
        blobs = tier.peek_many([("b.bin", 0, 3), ("a.bin", 60, 4)])
        assert blobs == [b"qqq", bytes(range(60, 64))]
        assert tier.clock.elapsed == before  # peeks are uncharged

    def test_peek_many_validates_bounds(self, tier):
        tier.write("a.bin", b"abc")
        with pytest.raises(StorageError):
            tier.peek_many([("a.bin", 0, 4)])
        with pytest.raises(StorageError):
            tier.peek_many([("ghost", 0, 1)])

    def test_capacity_enforced(self, tmp_path):
        tier = StorageTier("t", "ssd", 10, backend=MemoryBackend())
        tier.write("a", b"12345")
        with pytest.raises(CapacityError):
            tier.write("b", b"123456")
        tier.delete("a")
        assert tier.used_bytes == 0

    def test_adoption_from_sharded_backend(self, tmp_path):
        be = make_backend("sharded", tmp_path, shards=2, chunk_size=8)
        be.put("old.bin", b"z" * 20)
        tier = StorageTier("t", "ssd", 1000, backend=be)
        assert tier.exists("old.bin")
        assert tier.used_bytes == 20
        assert tier.read("old.bin") == b"z" * 20

    def test_path_raises_for_non_filesystem(self):
        tier = StorageTier("t", "ssd", 100, backend=MemoryBackend())
        with pytest.raises(StorageError):
            tier._path("x")

    def test_repr_names_backend(self):
        tier = StorageTier("t", "ssd", 100, backend=MemoryBackend())
        assert "memory" in repr(tier)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            ObjectStore()


class TestEndToEndAcrossBackends:
    def test_campaign_write_progressive_read_bit_identical(self, tmp_path):
        """The full write + progressive-read pipeline is backend-agnostic.

        The same campaign encoded over filesystem, memory, and sharded
        backends must restore bit-identical fields at every level — the
        backend moves bytes, nothing else.
        """
        import numpy as np

        from repro.api import (
            CampaignReader,
            LevelScheme,
            two_tier_titan,
            write_campaign,
        )
        from repro.mesh.generators import annulus

        mesh = annulus(12, 40)
        v = mesh.vertices
        steps = {
            0: np.sin(2 * v[:, 0]) * v[:, 1],
            1: np.cos(3 * v[:, 1]) + 0.1 * v[:, 0],
        }
        restored: dict[str, dict] = {}
        for kind in BACKEND_KINDS:
            h = two_tier_titan(
                tmp_path / kind, fast_capacity=8 << 20,
                slow_capacity=1 << 33, backend=kind, shards=2,
                chunk_size=4096,
            )
            write_campaign(
                h, "camp", "dpot", mesh, steps, LevelScheme(3),
                codec="zfp", codec_params={"tolerance": 1e-4},
            )
            reader = CampaignReader(h, "camp")
            assert reader.steps == [0, 1]
            restored[kind] = {
                (step, level): reader.restore(step, level).field
                for step in (0, 1)
                for level in (2, 1, 0)
            }
        for kind in ("memory", "sharded"):
            for key, ref in restored["filesystem"].items():
                np.testing.assert_array_equal(
                    ref, restored[kind][key],
                    err_msg=f"{kind} diverged at step/level {key}",
                )
