"""Tests for the multiprocess streaming encode scheduler.

Covers the fused kernel's bit-identity against the staged path, the
shared-memory windowed streaming (bounded slots, in-order emit), plan
locality across process boundaries (fork inherits a warm cache, spawn
rebuilds once per plane), and the scheduler-backed partitioned encode.
"""

import os

import numpy as np
import pytest

from repro.compress import get_codec
from repro.core import (
    BufferArena,
    CampaignReader,
    CampaignWriter,
    EncodeScheduler,
    LevelScheme,
    SchedPlane,
    build_plan,
    encode_campaign_scaleout,
    encode_partitioned,
    fused_step_products,
    get_plan_cache,
    mesh_fingerprint,
)
from repro.core.encode_scheduler import _SlotPool
from repro.core.parallel import PartitionedDecoder
from repro.errors import CanopusError
from repro.io import BPDataset
from repro.obs.metrics import get_registry
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

TOL = 1e-4
START_METHODS = ["fork", "spawn"]


@pytest.fixture(scope="module")
def ds():
    return make_xgc1(scale=0.12, seed=3)


@pytest.fixture(scope="module")
def fields(ds):
    rng = np.random.default_rng(11)
    out = {}
    for step in range(5):
        drift = 0.04 * step * np.cos(ds.mesh.vertices[:, 0] * 3 + step)
        out[step] = ds.field + drift + rng.normal(0, 1e-3, ds.mesh.num_vertices)
    return out


def _hier(tmp_path, tag):
    return two_tier_titan(
        tmp_path / tag, fast_capacity=16 << 20, slow_capacity=1 << 34
    )


class TestBufferArena:
    def test_reuse_by_shape(self):
        arena = BufferArena()
        a = arena.take((100,))
        arena.give(a)
        b = arena.take((100,))
        assert b is a
        assert arena.hits == 1 and arena.misses == 1
        assert arena.bytes_reused == a.nbytes

    def test_distinct_shapes_miss(self):
        arena = BufferArena()
        arena.give(arena.take((10,)))
        arena.take((20,))
        assert arena.misses == 2
        assert arena.pooled_bytes == 80

    def test_clear(self):
        arena = BufferArena()
        arena.give(arena.take((10,)))
        arena.clear()
        assert arena.pooled_bytes == 0


class TestFusedKernel:
    def test_bit_identical_to_staged_path(self, ds, fields):
        scheme = LevelScheme(3)
        plan = build_plan(ds.mesh, scheme)
        codec = get_codec("zfp", tolerance=TOL)
        products, stats = fused_step_products(plan, fields[0], codec)
        levels, deltas = plan.refactor_fields(fields[0])
        assert products["base"] == codec.encode(levels[-1].ravel())
        for lvl in scheme.delta_levels():
            assert products[f"delta{lvl}"] == codec.encode(deltas[lvl].ravel())
        assert stats["replay_seconds"] > 0
        assert stats["compress_seconds"] > 0

    def test_arena_warm_after_first_step(self, ds, fields):
        scheme = LevelScheme(3)
        plan = build_plan(ds.mesh, scheme)
        codec = get_codec("zfp", tolerance=TOL)
        arena = BufferArena()
        fused_step_products(plan, fields[0], codec, arena=arena)
        misses_after_first = arena.misses
        fused_step_products(plan, fields[1], codec, arena=arena)
        assert arena.misses == misses_after_first  # all buffers pooled
        assert arena.hits > 0


class TestSlotPool:
    def test_reuse_and_grow(self):
        pool = _SlotPool(window=2)
        try:
            a = pool.acquire(1000)
            pool.release(a.name)
            b = pool.acquire(500)  # fits in the freed slot
            assert b.name == a.name
            pool.release(b.name)
            c = pool.acquire(5000)  # grows: unlink + recreate
            assert c.size >= 5000
            assert pool.hwm_bytes >= 5000
        finally:
            pool.destroy_all()

    def test_hwm_tracks_total_allocation(self):
        pool = _SlotPool(window=3)
        try:
            pool.acquire(1000)
            pool.acquire(2000)
            assert pool.hwm_bytes >= 3000
            assert pool.in_use == 2
        finally:
            pool.destroy_all()


class _RecordingSink:
    def __init__(self):
        self.geoms = []
        self.order = []

    def geometry(self, plane_id, geom):
        self.geoms.append((plane_id, geom))

    def products(self, plane_id, step, products, stats):
        self.order.append((plane_id, step))


class TestSchedulerInline:
    def test_geometry_once_and_in_order(self, ds, fields):
        scheme = LevelScheme(3)
        sched = EncodeScheduler(codec="zfp", codec_params={"tolerance": TOL})
        sink = _RecordingSink()
        report = sched.run(
            [SchedPlane(0, ds.mesh, scheme)],
            ((0, s, f) for s, f in sorted(fields.items())),
            sink,
        )
        assert len(sink.geoms) == 1
        assert sink.order == [(0, s) for s in sorted(fields)]
        assert report.tasks == len(fields)
        assert report.plan_replays == len(fields)
        assert report.vertices_encoded == len(fields) * ds.mesh.num_vertices

    def test_validates_inputs(self, ds):
        sched = EncodeScheduler()
        with pytest.raises(CanopusError):
            sched.run([], iter(()), _RecordingSink())
        scheme = LevelScheme(3)
        dup = [SchedPlane(1, ds.mesh, scheme), SchedPlane(1, ds.mesh, scheme)]
        with pytest.raises(CanopusError):
            sched.run(dup, iter(()), _RecordingSink())
        with pytest.raises(CanopusError):
            EncodeScheduler(window=0)
        with pytest.raises(CanopusError):
            EncodeScheduler(processes=0)


class TestCampaignScaleout:
    @pytest.fixture(scope="class")
    def reference(self, ds, fields, tmp_path_factory):
        hier = _hier(tmp_path_factory.mktemp("ref"), "writer")
        writer = CampaignWriter(
            hier, "run", "dpot", ds.mesh, LevelScheme(3),
            codec="zfp", codec_params={"tolerance": TOL},
        )
        with writer:
            for s, f in sorted(fields.items()):
                writer.write_step(s, f)
        return hier

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_bit_identical_products(
        self, ds, fields, reference, tmp_path, start_method
    ):
        hier = _hier(tmp_path, "mp")
        report, _ = encode_campaign_scaleout(
            hier, "run", "dpot", ds.mesh, LevelScheme(3),
            ((s, f) for s, f in sorted(fields.items())),
            processes=2, window=2, start_method=start_method,
            codec="zfp", codec_params={"tolerance": TOL},
        )
        ref = BPDataset.open("run", reference)
        got = BPDataset.open("run", hier)
        assert set(ref.keys()) == set(got.keys())
        for key in ref.keys():
            assert ref.read(key) == got.read(key), key
        assert (
            ref.catalog.attrs["campaign"] == got.catalog.attrs["campaign"]
        )
        assert report.tasks == len(fields)
        assert report.start_method == start_method

    def test_window_bounds_shm(self, ds, fields, tmp_path):
        hier = _hier(tmp_path, "w")
        report, _ = encode_campaign_scaleout(
            hier, "run", "dpot", ds.mesh, LevelScheme(3),
            sorted(fields.items()),
            processes=2, window=2, start_method="fork",
            codec="zfp", codec_params={"tolerance": TOL},
        )
        per_task = ds.mesh.num_vertices * 8
        assert report.shm_hwm_bytes <= 2 * per_task
        assert report.shm_bytes == len(fields) * per_task
        # 5 tasks through a 2-slot window on slow workers must stall.
        assert report.window_stalls >= 1
        assert report.peak_rss_bytes > 0

    def test_restores_and_counters(self, ds, fields, tmp_path):
        before = get_registry().counter("encode.sched.tasks").value
        hier = _hier(tmp_path, "c")
        encode_campaign_scaleout(
            hier, "run", "dpot", ds.mesh, LevelScheme(3),
            sorted(fields.items()),
            processes=2, window=3, start_method="fork",
            codec="zfp", codec_params={"tolerance": TOL},
        )
        reader = CampaignReader(hier, "run")
        out = reader.restore(3, 0)
        assert np.allclose(out.field, fields[3], atol=5 * TOL)
        after = get_registry().counter("encode.sched.tasks").value
        assert after - before == len(fields)
        assert get_registry().gauge("encode.sched.shm_hwm_bytes").value > 0
        assert get_registry().gauge("encode.sched.peak_rss_bytes").value > 0

    def test_worker_error_propagates(self, ds, tmp_path):
        hier = _hier(tmp_path, "err")
        with pytest.raises(CanopusError, match="worker"):
            encode_campaign_scaleout(
                hier, "run", "dpot", ds.mesh, LevelScheme(3),
                [(0, np.zeros(17))],  # wrong vertex count
                processes=2, window=2, start_method="fork",
                codec="zfp", codec_params={"tolerance": TOL},
            )


class TestPlanCacheAcrossProcesses:
    """Plan locality across the fork/spawn boundary.

    A forked worker inherits the parent's warm plan cache and must not
    re-decimate; a spawned worker starts cold and decimates exactly
    once per assigned plane. Either way the cache key (mesh content
    fingerprint + scheme + kernel config) survives the boundary — the
    same mesh hashes identically in parent and child.
    """

    def test_fork_inherits_warm_cache(self, ds, fields, tmp_path):
        scheme = LevelScheme(3)
        get_plan_cache().get_or_build(ds.mesh, scheme)  # warm the parent
        hier = _hier(tmp_path, "fork")
        report, _ = encode_campaign_scaleout(
            hier, "run", "dpot", ds.mesh, scheme,
            sorted(fields.items())[:2],
            processes=2, window=2, start_method="fork",
            codec="zfp", codec_params={"tolerance": TOL},
        )
        assert report.plan_builds == 0
        assert report.plan_replays == 2

    def test_spawn_builds_once_per_plane(self, ds, fields, tmp_path):
        scheme = LevelScheme(3)
        get_plan_cache().get_or_build(ds.mesh, scheme)  # parent warmth
        hier = _hier(tmp_path, "spawn")
        report, _ = encode_campaign_scaleout(
            hier, "run", "dpot", ds.mesh, scheme,
            sorted(fields.items())[:2],
            processes=2, window=2, start_method="spawn",
            codec="zfp", codec_params={"tolerance": TOL},
        )
        # does not reach the parent's cache: exactly one cold build
        assert report.plan_builds == 1
        assert report.plan_replays == 2

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_fingerprint_survives_boundary(
        self, ds, fields, tmp_path, start_method
    ):
        scheme = LevelScheme(3)
        sched = EncodeScheduler(
            processes=2, window=2, start_method=start_method,
            codec="zfp", codec_params={"tolerance": TOL},
        )
        sink = _RecordingSink()
        sched.run(
            [SchedPlane(0, ds.mesh, scheme)],
            [(0, 0, fields[0])],
            sink,
        )
        [(plane_id, geom)] = sink.geoms
        assert plane_id == 0
        assert geom["fingerprint"] == mesh_fingerprint(ds.mesh)


class TestPartitionedOnScheduler:
    def test_serial_and_mp_byte_identical(self, ds, tmp_path):
        scheme = LevelScheme(3)
        r1, parts1 = encode_partitioned(
            _hier(tmp_path, "s"), "part", "dpot", ds.mesh, ds.field, scheme,
            parts=4, codec="zfp", codec_params={"tolerance": TOL},
        )
        h2 = _hier(tmp_path, "m")
        r2, parts2 = encode_partitioned(
            h2, "part", "dpot", ds.mesh, ds.field, scheme,
            parts=4, processes=2, window=2, start_method="fork",
            codec="zfp", codec_params={"tolerance": TOL},
        )
        d1 = BPDataset.open("part", _hier(tmp_path, "s"))
        d2 = BPDataset.open("part", h2)
        assert set(d1.keys()) == set(d2.keys())
        for key in d1.keys():
            assert d1.read(key) == d2.read(key), key
        assert r1.parts == r2.parts == 4
        assert len(r2.per_part_seconds) == 4
        assert r2.compressed_bytes == r1.compressed_bytes

    def test_gather_exact_after_mp_encode(self, ds, tmp_path):
        hier = _hier(tmp_path, "g")
        encode_partitioned(
            hier, "part", "dpot", ds.mesh, ds.field, LevelScheme(3),
            parts=3, processes=2, window=2, start_method="fork",
            codec="deflate", codec_params={},
        )
        dec = PartitionedDecoder(hier, "part")
        gathered = dec.gather_full_accuracy()
        # Lossless payloads: residual error is float re-association in
        # the delta round trip, far below any physical scale.
        atol = float(np.ptp(ds.field)) * 1e-12
        np.testing.assert_allclose(gathered, ds.field, atol=atol)

    def test_relative_tolerance_resolved_globally(self, ds, tmp_path):
        r1, _ = encode_partitioned(
            _hier(tmp_path, "ra"), "part", "dpot", ds.mesh, ds.field,
            LevelScheme(3), parts=2,
            codec="zfp", codec_params={"mode": "relative", "tolerance": 1e-6},
        )
        h2 = _hier(tmp_path, "rb")
        r2, _ = encode_partitioned(
            h2, "part", "dpot", ds.mesh, ds.field,
            LevelScheme(3), parts=2, processes=2, start_method="fork",
            codec="zfp", codec_params={"mode": "relative", "tolerance": 1e-6},
        )
        assert r1.compressed_bytes == r2.compressed_bytes


class TestWriteCampaignFacade:
    def test_processes_route_matches_serial(self, ds, fields, tmp_path):
        from repro.api import write_campaign

        scheme = LevelScheme(3)
        h1 = _hier(tmp_path, "a")
        rs = write_campaign(
            h1, "run", "dpot", ds.mesh, fields, scheme,
            codec_params={"tolerance": TOL},
        )
        h2 = _hier(tmp_path, "b")
        rm = write_campaign(
            h2, "run", "dpot", ds.mesh, fields, scheme,
            codec_params={"tolerance": TOL},
            processes=2, window=2, start_method="fork",
        )
        assert [r.step for r in rm] == [r.step for r in rs]
        assert [r.compressed_bytes for r in rm] == [
            r.compressed_bytes for r in rs
        ]
        d1 = BPDataset.open("run", h1)
        d2 = BPDataset.open("run", h2)
        for key in d1.keys():
            assert d1.read(key) == d2.read(key), key


@pytest.mark.skipif(os.cpu_count() is None, reason="no cpu info")
class TestSpans:
    def test_task_spans_fold_into_trace(self, ds, fields, tmp_path):
        from repro.obs.trace import trace_session

        with trace_session() as tracer:
            encode_campaign_scaleout(
                _hier(tmp_path, "t"), "run", "dpot", ds.mesh,
                LevelScheme(3), sorted(fields.items())[:3],
                processes=2, window=2, start_method="fork",
                codec="zfp", codec_params={"tolerance": TOL},
            )
        names = [s.name for s in tracer.spans]
        assert "encode.sched.run" in names
        task_spans = [s for s in tracer.spans if s.name == "encode.sched.task"]
        assert len(task_spans) == 3
        run = next(s for s in tracer.spans if s.name == "encode.sched.run")
        assert all(s.parent_id == run.span_id for s in task_spans)
        assert all(s.thread.startswith("repro-encw-") for s in task_spans)
