"""Tests for the byte-splitting refactorer (decimation alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import byte_restore, byte_split
from repro.errors import RefactoringError


class TestByteSplit:
    def test_full_restore_exact(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 100, 500)
        products = byte_split(data)
        assert np.array_equal(byte_restore(products), data)

    def test_prefix_restore_monotone_error(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 100, 500)
        products = byte_split(data, plan=(2, 2, 2, 2))
        errors = []
        for k in range(1, 5):
            approx = byte_restore(products[:k])
            errors.append(np.max(np.abs(approx - data)))
        assert errors[0] > errors[1] > errors[2]
        assert errors[3] == 0.0

    def test_base_relative_error_bound(self):
        """2 bytes = sign + exponent + 4 mantissa bits ⇒ rel err < 2^-4."""
        rng = np.random.default_rng(2)
        data = rng.uniform(1.0, 1000.0, 1000)
        base = byte_split(data, plan=(2, 6))[0]
        approx = byte_restore([base])
        rel = np.abs(approx - data) / np.abs(data)
        assert rel.max() < 2.0**-4

    def test_plan_validation(self):
        data = np.zeros(4)
        with pytest.raises(RefactoringError):
            byte_split(data, plan=(2, 2))  # sums to 4
        with pytest.raises(RefactoringError):
            byte_split(data, plan=(0, 8))

    def test_restore_requires_base(self):
        data = np.arange(10, dtype=float)
        products = byte_split(data, plan=(2, 2, 4))
        with pytest.raises(RefactoringError):
            byte_restore(products[1:])
        with pytest.raises(RefactoringError):
            byte_restore([])

    def test_non_contiguous_rejected(self):
        data = np.arange(10, dtype=float)
        products = byte_split(data, plan=(2, 2, 4))
        with pytest.raises(RefactoringError):
            byte_restore([products[0], products[2]])

    def test_count_mismatch_rejected(self):
        a = byte_split(np.arange(10, dtype=float), plan=(2, 6))
        b = byte_split(np.arange(20, dtype=float), plan=(2, 6))
        with pytest.raises(RefactoringError):
            byte_restore([a[0], b[1]])

    def test_base_plane_compresses(self):
        """Top bytes of a smooth field are redundant ⇒ tiny base product."""
        x = np.linspace(1.0, 2.0, 10_000)
        base = byte_split(x, plan=(2, 6))[0]
        assert len(base.payload) < 2 * len(x) * 0.3

    @settings(max_examples=30, deadline=None)
    @given(
        data=arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(allow_nan=False, allow_infinity=False, width=64),
        )
    )
    def test_full_roundtrip_property(self, data):
        products = byte_split(data, plan=(1, 1, 2, 4))
        assert np.array_equal(byte_restore(products), data)
