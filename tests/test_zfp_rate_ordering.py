"""Tests for ZFP fixed-rate mode and vertex-ordering utilities."""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.errors import CompressionError, MeshError
from repro.mesh.generators import annulus, disk
from repro.mesh.ordering import inverse_permutation, vertex_ordering


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(1)
    x = np.linspace(0, 25, 16384)
    return np.sin(x) * np.exp(-0.02 * x) + rng.normal(0, 0.05, x.size)


class TestFixedRate:
    def test_budget_respected(self, signal):
        for rate in (4, 8, 16, 32):
            codec = get_codec("zfp", rate=rate)
            blob = codec.encode(signal)
            budget = int(np.ceil(rate * signal.size / 8))
            # Envelope header adds a constant ~16 bytes on top of the body.
            assert len(blob) <= budget + 32

    def test_error_shrinks_with_rate(self, signal):
        errors = []
        for rate in (2, 4, 8, 16, 32):
            codec = get_codec("zfp", rate=rate)
            out = codec.decode(codec.encode(signal))
            errors.append(np.abs(out - signal).max())
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-4 * np.ptp(signal)

    def test_rate_overrides_tolerance(self, signal):
        tight = get_codec("zfp", tolerance=1e-12, rate=4)
        blob = tight.encode(signal)
        assert len(blob) <= 4 * signal.size / 8 + 32

    def test_rate_validation(self):
        with pytest.raises(CompressionError):
            get_codec("zfp", rate=0.5)
        with pytest.raises(CompressionError):
            get_codec("zfp", rate=65)

    def test_max_error_reporting(self):
        assert get_codec("zfp", rate=8).max_error() == float("inf")
        assert get_codec("zfp", tolerance=1e-3).max_error() == 1e-3

    def test_roundtrip_decodes(self, signal):
        codec = get_codec("zfp", rate=12)
        out = codec.decode(codec.encode(signal))
        assert out.shape == signal.shape
        assert np.isfinite(out).all()

    def test_constant_array(self):
        codec = get_codec("zfp", rate=8)
        data = np.full(100, 3.5)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_tiny_array_fallback(self):
        """Headers dominate tiny arrays; encode still succeeds."""
        codec = get_codec("zfp", rate=1)
        data = np.array([1.0, 2.0, 3.0])
        out = codec.decode(codec.encode(data))
        assert out.shape == (3,)

    def test_smooth_needs_fewer_bits_for_same_error(self):
        x = np.linspace(0, 10, 8192)
        smooth = np.sin(x)
        rng = np.random.default_rng(0)
        rough = smooth + rng.normal(0, 0.3, x.size)
        for rate in (6,):
            codec = get_codec("zfp", rate=rate)
            es = np.abs(codec.decode(codec.encode(smooth)) - smooth).max()
            er = np.abs(codec.decode(codec.encode(rough)) - rough).max()
            assert es < er


class TestVertexOrdering:
    @pytest.mark.parametrize("method", ["identity", "bfs", "rcm", "spatial"])
    def test_valid_permutation(self, method):
        mesh = disk(500, seed=0)
        perm = vertex_ordering(mesh, method)
        assert sorted(perm) == list(range(mesh.num_vertices))

    def test_identity(self):
        mesh = disk(100, seed=1)
        assert np.array_equal(
            vertex_ordering(mesh, "identity"), np.arange(100)
        )

    def test_unknown_method(self):
        with pytest.raises(MeshError):
            vertex_ordering(disk(50, seed=2), "alphabetical")

    def test_inverse_permutation(self):
        mesh = disk(300, seed=3)
        perm = vertex_ordering(mesh, "spatial")
        inv = inverse_permutation(perm)
        field = np.arange(300, dtype=float)
        assert np.array_equal(field[perm][inv], field)

    def test_bfs_neighbors_stay_close(self):
        """BFS order keeps mesh neighbors nearby in storage order."""
        mesh = annulus(15, 40)
        perm = vertex_ordering(mesh, "bfs")
        pos = inverse_permutation(perm)
        e = mesh.edges
        gaps = np.abs(pos[e[:, 0]] - pos[e[:, 1]])
        # Mean storage-order gap across edges is far below random (~n/3).
        assert gaps.mean() < mesh.num_vertices / 10

    def test_spatial_order_is_spatially_coherent(self):
        mesh = disk(1000, seed=4)
        perm = vertex_ordering(mesh, "spatial")
        pts = mesh.vertices[perm]
        steps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        rng = np.random.default_rng(0)
        random_pts = mesh.vertices[rng.permutation(1000)]
        random_steps = np.linalg.norm(np.diff(random_pts, axis=0), axis=1)
        assert steps.mean() < 0.5 * random_steps.mean()

    def test_empty_mesh(self):
        from repro.mesh import TriangleMesh

        mesh = TriangleMesh(np.zeros((0, 2)), np.zeros((0, 3), dtype=int))
        assert len(vertex_ordering(mesh, "rcm")) == 0

    def test_rcm_is_reversed_bfs(self):
        mesh = disk(200, seed=5)
        bfs = vertex_ordering(mesh, "bfs")
        rcm = vertex_ordering(mesh, "rcm")
        assert np.array_equal(rcm, bfs[::-1])
