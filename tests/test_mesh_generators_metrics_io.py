"""Tests for mesh generators, quality metrics, and (de)serialization."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import load_mesh, save_mesh
from repro.mesh.generators import (
    annulus,
    delaunay_from_points,
    disk,
    rectangle_with_cutout,
    structured_rectangle,
    sunflower_points,
)
from repro.mesh.io import load_off, save_off
from repro.mesh.metrics import (
    mesh_stats,
    triangle_aspect_ratios,
    triangle_min_angles,
)


class TestGenerators:
    def test_structured_rectangle_counts(self):
        mesh = structured_rectangle(5, 7)
        assert mesh.num_vertices == 35
        assert mesh.num_triangles == 2 * 4 * 6

    def test_structured_rectangle_area(self):
        mesh = structured_rectangle(9, 9, width=2.0, height=3.0)
        assert mesh.total_area() == pytest.approx(6.0)

    def test_structured_rectangle_jitter_valid(self):
        mesh = structured_rectangle(15, 15, jitter=0.4, seed=0)
        assert (mesh.triangle_areas() > 0).all()

    def test_structured_rectangle_too_small(self):
        with pytest.raises(MeshError):
            structured_rectangle(1, 5)

    def test_sunflower_points_on_disk(self):
        pts = sunflower_points(500, radius=2.0)
        r = np.hypot(pts[:, 0], pts[:, 1])
        assert (r <= 2.0 + 1e-9).all()
        assert len(pts) == 500

    def test_sunflower_needs_points(self):
        with pytest.raises(MeshError):
            sunflower_points(0)

    def test_disk_vertex_count(self):
        mesh = disk(1000, seed=0)
        assert mesh.num_vertices == 1000
        assert mesh.euler_characteristic() == 1

    def test_disk_area_close_to_circle(self):
        mesh = disk(5000, radius=1.0)
        assert mesh.total_area() == pytest.approx(np.pi, rel=0.01)

    def test_annulus_counts(self):
        mesh = annulus(6, 20)
        assert mesh.num_vertices == 120
        assert mesh.num_triangles == 2 * 5 * 20

    def test_annulus_hole(self):
        mesh = annulus(8, 30, r_inner=0.4, r_outer=1.0)
        r = np.hypot(mesh.vertices[:, 0], mesh.vertices[:, 1])
        assert r.min() == pytest.approx(0.4, abs=1e-9)
        assert mesh.euler_characteristic() == 0

    def test_annulus_validation(self):
        with pytest.raises(MeshError):
            annulus(1, 20)
        with pytest.raises(MeshError):
            annulus(5, 2)

    def test_delaunay_too_few_points(self):
        with pytest.raises(MeshError):
            delaunay_from_points(np.zeros((2, 2)))

    def test_rectangle_with_cutout_has_hole(self):
        mesh = rectangle_with_cutout(3000, seed=1)
        # The body cutout removes area from the full rectangle.
        assert mesh.total_area() < 4.0 * 2.0 * 0.99
        # No triangle centroid falls inside the default elliptical body.
        c = mesh.triangle_centroids()
        x = (c[:, 0] - 4.0 * 0.3) / (4.0 * 0.12)
        y = (c[:, 1] - 2.0 * 0.5) / (2.0 * 0.18)
        assert ((x * x + y * y) >= 1.0).all()

    def test_generators_deterministic_with_seed(self):
        a = disk(200, seed=42, jitter=0.1)
        b = disk(200, seed=42, jitter=0.1)
        assert np.array_equal(a.vertices, b.vertices)


class TestMetrics:
    def test_equilateral_aspect_ratio(self):
        from repro.mesh import TriangleMesh

        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        mesh = TriangleMesh(verts, np.array([[0, 1, 2]]))
        assert triangle_aspect_ratios(mesh)[0] == pytest.approx(1.0)
        assert triangle_min_angles(mesh)[0] == pytest.approx(np.pi / 3)

    def test_sliver_has_high_aspect(self):
        from repro.mesh import TriangleMesh

        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.01]])
        mesh = TriangleMesh(verts, np.array([[0, 1, 2]]))
        assert triangle_aspect_ratios(mesh)[0] > 5.0

    def test_mesh_stats_fields(self):
        mesh = disk(300, seed=3)
        stats = mesh_stats(mesh)
        assert stats.num_vertices == 300
        assert stats.total_area > 0
        assert 0 < stats.min_angle_deg < 60
        d = stats.as_dict()
        assert d["num_vertices"] == 300
        assert d["euler_characteristic"] == 1


class TestIO:
    def test_npz_roundtrip(self, tmp_path):
        mesh = disk(150, seed=4)
        fields = {"dpot": np.arange(150, dtype=float)}
        path = tmp_path / "mesh.npz"
        save_mesh(path, mesh, fields)
        mesh2, fields2 = load_mesh(path)
        assert mesh2 == mesh
        assert np.array_equal(fields2["dpot"], fields["dpot"])

    def test_npz_without_fields(self, tmp_path):
        mesh = disk(50, seed=5)
        path = tmp_path / "m.npz"
        save_mesh(path, mesh)
        mesh2, fields2 = load_mesh(path)
        assert mesh2 == mesh
        assert fields2 == {}

    def test_npz_field_length_check(self, tmp_path):
        mesh = disk(50, seed=5)
        with pytest.raises(MeshError):
            save_mesh(tmp_path / "bad.npz", mesh, {"f": np.zeros(3)})

    def test_npz_not_a_mesh(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(MeshError):
            load_mesh(path)

    def test_off_roundtrip(self, tmp_path):
        mesh = structured_rectangle(4, 4)
        path = tmp_path / "mesh.off"
        save_off(path, mesh)
        mesh2 = load_off(path)
        assert mesh2 == mesh

    def test_off_bad_header(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text("NOTOFF\n")
        with pytest.raises(MeshError):
            load_off(path)
