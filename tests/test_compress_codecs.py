"""Tests for the ZFP-, SZ-, FPC-style codecs and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compress import (
    CompressionResult,
    available_codecs,
    compress_with_stats,
    decode_auto,
    get_codec,
)
from repro.compress.zfp import _forward_transform, _inverse_transform
from repro.errors import CompressionError, UnknownCodecError


def signals():
    rng = np.random.default_rng(7)
    x = np.linspace(0, 12, 4000)
    return {
        "smooth": np.sin(x) * np.exp(-0.1 * x),
        "rough": np.sin(x) + rng.normal(0, 0.5, x.size),
        "constant": np.full(1000, 3.25),
        "tiny": rng.normal(0, 1e-8, 2000),
        "large": rng.normal(1e6, 1e3, 2000),
        "single": np.array([42.5]),
        "pair": np.array([1.0, -1.0]),
    }


LOSSY = [("zfp", {"tolerance": 1e-5}), ("sz", {"tolerance": 1e-5})]
LOSSLESS = [("fpc", {}), ("deflate", {}), ("raw", {}), ("zfp", {"tolerance": 0.0}), ("sz", {"tolerance": 0.0})]


class TestRegistry:
    def test_available(self):
        names = available_codecs()
        for expect in ("zfp", "sz", "fpc", "deflate", "raw"):
            assert expect in names

    def test_unknown_codec(self):
        with pytest.raises(UnknownCodecError):
            get_codec("bogus")

    def test_decode_auto_dispatch(self):
        data = np.linspace(0, 1, 100)
        blob = get_codec("deflate").encode(data)
        assert np.array_equal(decode_auto(blob), data)

    def test_decode_wrong_codec(self):
        data = np.linspace(0, 1, 10)
        blob = get_codec("raw").encode(data)
        with pytest.raises(CompressionError):
            get_codec("deflate").decode(blob)

    def test_decode_garbage(self):
        with pytest.raises(CompressionError):
            decode_auto(b"not a payload")


class TestLossyBounds:
    @pytest.mark.parametrize("name,params", LOSSY)
    @pytest.mark.parametrize("signal", list(signals()))
    def test_error_bound_respected(self, name, params, signal):
        codec = get_codec(name, **params)
        data = signals()[signal]
        out = codec.decode(codec.encode(data))
        assert out.shape == data.shape
        if data.size:
            assert np.max(np.abs(out - data)) <= params["tolerance"] + 1e-15

    @pytest.mark.parametrize("name", ["zfp", "sz"])
    def test_tighter_tolerance_bigger_payload(self, name):
        data = signals()["rough"]
        loose = len(get_codec(name, tolerance=1e-2).encode(data))
        tight = len(get_codec(name, tolerance=1e-8).encode(data))
        assert tight > loose

    @pytest.mark.parametrize("name", ["zfp", "sz"])
    def test_smooth_compresses_better_than_rough(self, name):
        s = signals()
        codec = get_codec(name, tolerance=1e-5)
        assert len(codec.encode(s["smooth"])) < len(codec.encode(s["rough"]))

    def test_zfp_relative_mode(self):
        data = signals()["large"]
        codec = get_codec("zfp", tolerance=1e-6, mode="relative")
        out = codec.decode(codec.encode(data))
        bound = 1e-6 * (data.max() - data.min())
        assert np.max(np.abs(out - data)) <= bound * (1 + 1e-12)

    def test_zfp_bad_mode(self):
        with pytest.raises(CompressionError):
            get_codec("zfp", mode="sideways")

    def test_negative_tolerance(self):
        with pytest.raises(CompressionError):
            get_codec("zfp", tolerance=-1.0)
        with pytest.raises(CompressionError):
            get_codec("sz", tolerance=-1.0)

    def test_tolerance_too_small_raises(self):
        data = np.array([1e300, -1e300])
        with pytest.raises(CompressionError):
            get_codec("zfp", tolerance=1e-30).encode(data)
        with pytest.raises(CompressionError):
            get_codec("sz", tolerance=1e-30).encode(data)

    def test_non_finite_rejected(self):
        for name, params in LOSSY:
            with pytest.raises(CompressionError):
                get_codec(name, **params).encode(np.array([1.0, np.nan]))
            with pytest.raises(CompressionError):
                get_codec(name, **params).encode(np.array([np.inf]))

    def test_max_error_reporting(self):
        assert get_codec("zfp", tolerance=1e-3).max_error() == 1e-3
        assert get_codec("fpc").max_error() == 0.0


class TestLossless:
    @pytest.mark.parametrize("name,params", LOSSLESS)
    @pytest.mark.parametrize("signal", list(signals()))
    def test_exact_roundtrip(self, name, params, signal):
        codec = get_codec(name, **params)
        data = signals()[signal]
        out = codec.decode(codec.encode(data))
        assert np.array_equal(out, data)

    @pytest.mark.parametrize("predictor", ["delta", "fcm", "dfcm"])
    def test_fpc_predictors_exact(self, predictor):
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.normal(0, 1, 400))
        codec = get_codec("fpc", predictor=predictor)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_fpc_bad_predictor(self):
        with pytest.raises(CompressionError):
            get_codec("fpc", predictor="psychic")

    def test_fpc_compresses_correlated_data(self):
        # Smooth trajectories share exponent/top-mantissa bytes.
        x = np.linspace(1.0, 2.0, 8192)
        blob = get_codec("fpc").encode(x)
        assert len(blob) < x.nbytes

    def test_deflate_level_validation(self):
        with pytest.raises(CompressionError):
            get_codec("deflate", level=11)

    def test_negative_zero_preserved(self):
        data = np.array([0.0, -0.0, 1.0])
        for name, params in LOSSLESS:
            out = get_codec(name, **params).decode(
                get_codec(name, **params).encode(data)
            )
            assert np.array_equal(
                np.signbit(out), np.signbit(data)
            ), name


class TestEmptyAndShapes:
    @pytest.mark.parametrize(
        "name,params", LOSSY + LOSSLESS, ids=lambda v: str(v)
    )
    def test_empty_array(self, name, params):
        codec = get_codec(name, **params)
        out = codec.decode(codec.encode(np.zeros(0)))
        assert out.size == 0

    def test_2d_input_flattened(self):
        codec = get_codec("raw")
        data = np.arange(12, dtype=float).reshape(3, 4)
        out = codec.decode(codec.encode(data))
        assert out.shape == (12,)


class TestTransform:
    def test_transform_exact_inverse(self):
        rng = np.random.default_rng(11)
        q = rng.integers(-(2**40), 2**40, size=(500, 16)).astype(np.int64)
        assert np.array_equal(_inverse_transform(_forward_transform(q)), q)

    def test_transform_constant_block_single_coeff(self):
        q = np.full((1, 16), 77, dtype=np.int64)
        c = _forward_transform(q)
        assert c[0, 0] == 77
        assert np.all(c[0, 1:] == 0)

    def test_transform_linear_block_small_details(self):
        q = np.arange(16, dtype=np.int64)[None, :] * 10
        c = _forward_transform(q)
        # A linear ramp's fine-detail coefficients are all equal (constant
        # slope), tiny compared to the DC term.
        assert abs(c[0, 0]) > np.abs(c[0, 8:]).max()


class TestStatsHelper:
    def test_compress_with_stats(self):
        data = signals()["smooth"]
        res = compress_with_stats(get_codec("zfp", tolerance=1e-4), data)
        assert isinstance(res, CompressionResult)
        assert res.original_bytes == data.nbytes
        assert res.compressed_bytes > 0
        assert res.ratio > 1
        assert 0 < res.normalized_size < 1
        assert res.max_abs_error <= 1e-4
        assert res.encode_seconds >= 0


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        data=arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_zfp_bound_property(self, data):
        codec = get_codec("zfp", tolerance=1e-3)
        out = codec.decode(codec.encode(data))
        assert np.max(np.abs(out - data)) <= 1e-3 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        data=arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_sz_bound_property(self, data):
        codec = get_codec("sz", tolerance=1e-3)
        out = codec.decode(codec.encode(data))
        assert np.max(np.abs(out - data)) <= 1e-3 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        data=arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(
                allow_nan=False, allow_infinity=False, width=64
            ),
        )
    )
    def test_fpc_lossless_property(self, data):
        codec = get_codec("fpc")
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    @settings(max_examples=30, deadline=None)
    @given(
        data=arrays(
            np.float64,
            st.integers(0, 150),
            elements=st.floats(-1e9, 1e9, allow_nan=False, width=64),
        ),
        seed=st.integers(0, 100),
    )
    def test_decode_auto_roundtrip_property(self, data, seed):
        name = ["fpc", "deflate", "raw"][seed % 3]
        blob = get_codec(name).encode(data)
        assert np.array_equal(decode_auto(blob), data)
