"""Tests for the query engine and the deployment-mode cost model."""

import numpy as np
import pytest

from repro.core.encoder import EncodeReport
from repro.core.notation import LevelScheme
from repro.errors import ReproError, VariableNotFoundError
from repro.harness import setup_experiment
from repro.io import BPDataset, ChunkStats, QueryEngine, attach_stats
from repro.io.metadata import VariableRecord
from repro.perfmodel import model_modes


@pytest.fixture(scope="module")
def chunked_setup(tmp_path_factory):
    return setup_experiment(
        "xgc1", tmp_path_factory.mktemp("query"), scale=0.2, chunks=16
    )


class TestChunkStats:
    def test_of_values(self):
        s = ChunkStats.of(np.array([-3.0, 1.0, 2.0]))
        assert s.vmin == -3.0 and s.vmax == 2.0 and s.vabs_max == 3.0

    def test_empty(self):
        s = ChunkStats.of(np.zeros(0))
        assert s.vmin == 0.0 and s.vmax == 0.0

    def test_attach(self):
        rec = VariableRecord(
            key="k", tier="t", subfile="s", offset=0, length=1
        )
        attach_stats(rec, np.array([1.0, 5.0]))
        assert rec.attrs["stats"]["vmax"] == 5.0


class TestQueryEngine:
    def test_stats_recorded_by_encoder(self, chunked_setup):
        q = QueryEngine(BPDataset.open(chunked_setup.canopus_name,
                                       chunked_setup.hierarchy))
        stats = q.stats_of("dpot/L2")
        assert stats is not None
        field = chunked_setup.refactored.base_field
        assert stats.vmax == pytest.approx(field.max())

    def test_candidates_above_prunes(self, chunked_setup):
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        everything = q.candidates_above(-np.inf, kind="delta")
        # Deltas are near zero; a high threshold prunes almost all chunks.
        few = q.candidates_above(0.5, kind="delta")
        assert len(few) < len(everything)

    def test_candidates_sound(self, chunked_setup):
        """Pruned chunks provably cannot contain values above threshold."""
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        threshold = 0.3
        kept = set(q.candidates_above(threshold, kind="base"))
        for rec in ds.select(kind="base"):
            if rec.key not in kept:
                assert rec.attrs["stats"]["vmax"] < threshold

    def test_candidates_significant(self, chunked_setup):
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        all_deltas = q.candidates_significant(0.0)
        some = q.candidates_significant(1e-2)
        assert len(some) <= len(all_deltas)

    def test_products_without_stats_kept(self, chunked_setup):
        """Mesh/mapping products carry no stats → conservatively kept."""
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        kept = q.candidates_above(1e18, kind="mesh")
        assert len(kept) == len(ds.select(kind="mesh"))

    def test_prune_report(self, chunked_setup):
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        rep = q.prune_report(0.5, kind="delta")
        assert rep["kept_products"] <= rep["total_products"]
        assert rep["kept_bytes"] <= rep["total_bytes"]

    def test_require_missing(self, chunked_setup):
        ds = BPDataset.open(chunked_setup.canopus_name, chunked_setup.hierarchy)
        q = QueryEngine(ds)
        with pytest.raises(VariableNotFoundError):
            q.require("dpot/mesh2")  # mesh has no stats


class TestModes:
    def make_report(self):
        report = EncodeReport(
            var="dpot", scheme=LevelScheme(3), original_bytes=100 << 20
        )
        report.decimation_seconds = 2.0
        report.delta_seconds = 1.0
        report.compress_seconds = 1.0
        report.compressed_bytes = {"dpot/L2": 5 << 20, "dpot/delta0-1": 15 << 20}
        return report

    def test_all_modes_present(self):
        modes = model_modes(self.make_report(), simulation_seconds=30.0)
        assert set(modes) == {"baseline", "inline", "helper_core", "in_transit"}

    def test_in_transit_blocks_least(self):
        """Staging at network speed beats every storage-bound mode."""
        modes = model_modes(self.make_report(), simulation_seconds=30.0)
        assert (
            modes["in_transit"].blocking_seconds
            < modes["inline"].blocking_seconds
        )
        assert (
            modes["in_transit"].blocking_seconds
            < modes["baseline"].blocking_seconds
        )

    def test_canopus_inline_beats_baseline_when_io_bound(self):
        """Writing 4x less data wins once storage is slow enough."""
        modes = model_modes(
            self.make_report(),
            simulation_seconds=30.0,
            storage_bandwidth=10e6,  # badly congested PFS
        )
        assert modes["inline"].step_seconds < modes["baseline"].step_seconds

    def test_baseline_wins_when_storage_is_free(self):
        """With infinite-speed storage, refactoring is pure overhead."""
        modes = model_modes(
            self.make_report(),
            simulation_seconds=30.0,
            storage_bandwidth=1e15,
        )
        assert modes["baseline"].step_seconds < modes["inline"].step_seconds

    def test_helper_core_offloads(self):
        modes = model_modes(self.make_report(), simulation_seconds=300.0)
        helper = modes["helper_core"]
        assert helper.offloaded_seconds > 0
        # Long steps hide the helper's work entirely: blocking is just
        # the compressed write.
        assert helper.blocking_seconds < modes["inline"].blocking_seconds

    def test_overhead_fraction(self):
        modes = model_modes(self.make_report(), simulation_seconds=30.0)
        for mode in modes.values():
            assert 0 <= mode.overhead_fraction < 1

    def test_validation(self):
        with pytest.raises(ReproError):
            model_modes(self.make_report(), simulation_seconds=0)
        with pytest.raises(ReproError):
            model_modes(
                self.make_report(), simulation_seconds=1.0,
                helper_core_fraction=1.5,
            )
