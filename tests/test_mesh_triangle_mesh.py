"""Unit tests for repro.mesh.triangle_mesh."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import TriangleMesh
from repro.mesh.generators import annulus, disk, structured_rectangle


@pytest.fixture
def unit_square():
    verts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    tris = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(verts, tris)


class TestConstruction:
    def test_counts(self, unit_square):
        assert unit_square.num_vertices == 4
        assert unit_square.num_triangles == 2
        assert unit_square.num_edges == 5

    def test_vertices_readonly(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.vertices[0, 0] = 99.0

    def test_triangles_readonly(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.triangles[0, 0] = 3

    def test_bad_vertex_shape(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((4, 3)), np.array([[0, 1, 2]]))

    def test_bad_triangle_shape(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]))

    def test_out_of_range_index(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 2)), np.array([[0, 1, 5]]))

    def test_degenerate_triangle_rejected(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(MeshError):
            TriangleMesh(verts, np.array([[0, 1, 1]]))

    def test_duplicate_triangle_rejected(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(MeshError):
            TriangleMesh(verts, np.array([[0, 1, 2], [2, 0, 1]]))

    def test_orientation_normalized_ccw(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        cw = np.array([[0, 2, 1]])  # clockwise
        mesh = TriangleMesh(verts, cw)
        p = mesh.vertices[mesh.triangles[0]]
        signed = (p[1, 0] - p[0, 0]) * (p[2, 1] - p[0, 1]) - (
            p[1, 1] - p[0, 1]
        ) * (p[2, 0] - p[0, 0])
        assert signed > 0

    def test_empty_mesh_allowed(self):
        mesh = TriangleMesh(np.zeros((0, 2)), np.zeros((0, 3), dtype=int))
        assert mesh.num_vertices == 0
        assert mesh.num_triangles == 0


class TestConnectivity:
    def test_edges_unique_sorted(self, unit_square):
        e = unit_square.edges
        assert np.all(e[:, 0] < e[:, 1])
        assert len(np.unique(e, axis=0)) == len(e)

    def test_boundary_edges_square(self, unit_square):
        # 4 outer edges on the boundary, 1 interior diagonal
        assert len(unit_square.boundary_edges) == 4

    def test_boundary_vertices(self, unit_square):
        assert list(unit_square.boundary_vertices) == [0, 1, 2, 3]

    def test_vertex_neighbors(self, unit_square):
        assert set(unit_square.vertex_neighbors(0)) == {1, 2, 3}
        assert set(unit_square.vertex_neighbors(1)) == {0, 2}

    def test_adjacency_symmetric(self):
        mesh = disk(200, seed=0)
        indptr, indices = mesh.vertex_adjacency()
        for i in range(mesh.num_vertices):
            for j in indices[indptr[i] : indptr[i + 1]]:
                assert i in mesh.vertex_neighbors(int(j))

    def test_triangles_of_vertex(self, unit_square):
        assert set(unit_square.triangles_of_vertex(0)) == {0, 1}
        assert set(unit_square.triangles_of_vertex(1)) == {0}

    def test_is_edge(self, unit_square):
        assert unit_square.is_edge(0, 2)  # diagonal
        assert not unit_square.is_edge(1, 3)

    def test_euler_characteristic_disk_topology(self):
        mesh = disk(500, seed=1)
        assert mesh.euler_characteristic() == 1

    def test_euler_characteristic_annulus_topology(self):
        mesh = annulus(10, 32)
        assert mesh.euler_characteristic() == 0


class TestGeometry:
    def test_edge_lengths(self, unit_square):
        lengths = unit_square.edge_lengths()
        assert lengths.min() == pytest.approx(1.0)
        assert lengths.max() == pytest.approx(np.sqrt(2.0))

    def test_triangle_areas_sum(self, unit_square):
        assert unit_square.total_area() == pytest.approx(1.0)

    def test_triangle_areas_positive(self):
        mesh = structured_rectangle(10, 10, jitter=0.3, seed=2)
        assert (mesh.triangle_areas() > 0).all()

    def test_centroids(self, unit_square):
        c = unit_square.triangle_centroids()
        assert c.shape == (2, 2)
        assert np.allclose(c[0], [2.0 / 3.0, 1.0 / 3.0])

    def test_bounding_box(self, unit_square):
        lo, hi = unit_square.bounding_box()
        assert np.allclose(lo, [0, 0]) and np.allclose(hi, [1, 1])

    def test_bounding_box_empty_raises(self):
        mesh = TriangleMesh(np.zeros((0, 2)), np.zeros((0, 3), dtype=int))
        with pytest.raises(MeshError):
            mesh.bounding_box()


class TestUtilities:
    def test_compact_drops_unused(self):
        verts = np.array([[0.0, 0.0], [9.0, 9.0], [1.0, 0.0], [0.0, 1.0]])
        tris = np.array([[0, 2, 3]])
        mesh = TriangleMesh(verts, tris)
        compacted, index_map = mesh.compact()
        assert compacted.num_vertices == 3
        assert index_map[1] == -1
        assert compacted.total_area() == pytest.approx(mesh.total_area())

    def test_compact_with_field(self):
        verts = np.array([[0.0, 0.0], [9.0, 9.0], [1.0, 0.0], [0.0, 1.0]])
        tris = np.array([[0, 2, 3]])
        field = np.array([10.0, 20.0, 30.0, 40.0])
        mesh = TriangleMesh(verts, tris)
        compacted, _, new_field = mesh.compact(field)
        assert list(new_field) == [10.0, 30.0, 40.0]

    def test_compact_field_length_mismatch(self, unit_square):
        with pytest.raises(MeshError):
            unit_square.compact(np.zeros(3))

    def test_copy_independent(self, unit_square):
        cp = unit_square.copy()
        assert cp == unit_square
        assert cp is not unit_square

    def test_equality(self, unit_square):
        other = TriangleMesh(
            unit_square.vertices.copy(), unit_square.triangles.copy()
        )
        assert unit_square == other
        assert unit_square != disk(10, seed=0)

    def test_repr(self, unit_square):
        assert "num_vertices=4" in repr(unit_square)

    def test_iter_triangles(self, unit_square):
        tris = list(unit_square)
        assert len(tris) == 2
