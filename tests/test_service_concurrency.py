"""Concurrency tests for the read tier: many clients, shared caches.

The ISSUE acceptance points exercised here: N async clients × M
variables receive payloads bit-identical to a direct
:class:`DecodeEngine` restore, the bounded executor never deadlocks
even when client concurrency far exceeds its width, concurrent
sessions share the process-wide restored-level cache without
cross-tenant interference, and a tenant exceeding its budget gets 429
while other tenants keep being served.
"""

import asyncio

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import QuotaError
from repro.io import BPDataset
from repro.service import (
    CanopusService,
    ServiceClient,
    TenantConfig,
)
from repro.service.loadgen import ServiceThread, run_load
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

VARS = ["dpot", "apar", "dden"]
LEVELS = [0, 1, 2]
TOL = 1e-5


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    src = make_xgc1(scale=0.2)
    rng = np.random.default_rng(3)
    fields = {
        "dpot": src.field,
        "apar": 0.5 * src.field + 0.1 * rng.standard_normal(src.field.shape),
        "dden": np.abs(src.field),
    }
    root = tmp_path_factory.mktemp("conc")
    h = two_tier_titan(root, fast_capacity=64 << 20, slow_capacity=1 << 36)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": TOL, "mode": "relative"},
        chunks=4,
    )
    ds = BPDataset.create("camp", h)
    for var, f in fields.items():
        enc.encode("camp", var, src.mesh, f, LevelScheme(3),
                   dataset=ds, close=False)
    ds.close()

    get_restored_cache().clear()
    get_geometry_cache().clear()
    # Reference restores from a plain in-process engine over a separate
    # hierarchy handle — what the service payloads must equal bit-wise.
    ref_h = two_tier_titan(root, fast_capacity=64 << 20,
                           slow_capacity=1 << 36)
    from repro.session import Session

    expected = {}
    with Session(ref_h, workers=2) as session:
        camp = session.open("camp")
        for var in VARS:
            for level in LEVELS:
                expected[(var, level)] = camp.restore(
                    var, level=level
                ).field.copy()

    svc_h = two_tier_titan(root, fast_capacity=64 << 20,
                           slow_capacity=1 << 36)
    tenants = [
        TenantConfig(name="alice", token="tok-a"),
        TenantConfig(name="bob", token="tok-b"),
        TenantConfig(
            name="greedy", token="tok-g",
            max_requests=3, window_seconds=3600.0,
        ),
    ]
    # Deliberately narrow executor: concurrency >> workers must queue,
    # not deadlock.
    svc = CanopusService(svc_h, tenants=tenants, workers=2,
                         executor_workers=2)
    with ServiceThread(svc):
        yield svc, expected
    get_restored_cache().clear()
    get_geometry_cache().clear()


class TestConcurrentClients:
    def test_many_clients_bit_identical(self, stack):
        svc, expected = stack

        async def one_client(ci):
            async with ServiceClient(svc.host, svc.port,
                                     token="tok-a") as c:
                out = []
                for i in range(len(VARS) * len(LEVELS)):
                    var = VARS[(ci + i) % len(VARS)]
                    level = LEVELS[(ci + i) % len(LEVELS)]
                    field, meta = await c.restore("camp", var, level=level)
                    out.append((var, level, field))
                return out

        async def go():
            return await asyncio.gather(*(one_client(ci) for ci in range(12)))

        results = asyncio.run(go())
        checked = 0
        for per_client in results:
            for var, level, field in per_client:
                assert np.array_equal(field, expected[(var, level)]), (
                    f"payload mismatch for {var} L{level}"
                )
                checked += 1
        assert checked == 12 * len(VARS) * len(LEVELS)

    def test_two_tenants_share_cache_separate_accounting(self, stack):
        svc, expected = stack

        async def go():
            async with ServiceClient(svc.host, svc.port, token="tok-a") as a:
                _, first = await a.restore("camp", "dden", level=1)
            async with ServiceClient(svc.host, svc.port, token="tok-b") as b:
                field, second = await b.restore("camp", "dden", level=1)
                return first, second, field

        first, second, field = asyncio.run(go())
        # Same content -> same cursor for both tenants, and bob's
        # request is served from the restored-level cache alice warmed.
        assert first["cursor"] == second["cursor"]
        assert second["cache"] == "hit"
        assert np.array_equal(field, expected[("dden", 1)])
        usage = svc.tenants.usage()
        assert usage["alice"]["total_requests"] >= 1
        assert usage["bob"]["total_requests"] >= 1
        assert usage["bob"]["total_bytes"] > 0

    def test_bounded_executor_no_deadlock(self, stack):
        """3x oversubscribed clients against a 2-thread executor."""
        svc, expected = stack

        async def go():
            return await asyncio.wait_for(
                run_load(
                    svc.host, svc.port, "camp", VARS,
                    clients=24, requests_per_client=3,
                    levels=LEVELS, token="tok-a", expected=expected,
                ),
                timeout=120,
            )

        report = asyncio.run(go())
        assert report.requests == 24 * 3
        assert report.failures == 0
        assert report.mismatches == 0

    def test_quota_exceeded_does_not_starve_others(self, stack):
        svc, expected = stack

        async def greedy():
            hits = quota = 0
            async with ServiceClient(svc.host, svc.port, token="tok-g") as c:
                for _ in range(8):
                    try:
                        await c.restore("camp", "dpot", level=2)
                        hits += 1
                    except QuotaError as exc:
                        assert exc.retry_after > 0
                        quota += 1
            return hits, quota

        async def polite():
            async with ServiceClient(svc.host, svc.port, token="tok-b") as c:
                field, _ = await c.restore("camp", "apar", level=0)
                return field

        async def go():
            return await asyncio.gather(greedy(), polite())

        (hits, quota), field = asyncio.run(go())
        assert hits == 3  # greedy's budget
        assert quota == 5  # everything past it -> 429
        assert np.array_equal(field, expected[("apar", 0)])

    def test_sim_read_seconds_attributed(self, stack):
        """Cold restores charge simulated read time to the tenant."""
        svc, _ = stack
        before = svc.tenants.usage("alice")["total_sim_read_seconds"]
        # dpot L0 was already restored above; raw reads always touch
        # the engine. Use a fresh filtered restore to force I/O.
        async def go():
            async with ServiceClient(svc.host, svc.port, token="tok-a") as c:
                await c.restore("camp", "dpot", level=0,
                                min_significance=0.75)

        asyncio.run(go())
        after = svc.tenants.usage("alice")["total_sim_read_seconds"]
        assert after > before
