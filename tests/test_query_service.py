"""Service-level pushdown query routes (/v1/query/*) and the elastic loop.

A real :class:`CanopusService` on a socket serves two campaigns; the
tests drive the new pushdown endpoints through :class:`ServiceClient`
and assert the paper's operational claims: pruned queries perform zero
restores (via the ``query.pushdown.*`` counters and per-tenant sim-read
accounting), malformed query shapes map to HTTP 400, query responses
are charged against tenant quotas, and the served workload's
:class:`AccessTracker` feedback measurably shifts
``PlacementEngine.plan_replacement`` toward the queried campaign.
"""

import asyncio

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import QuotaError, RestorationError
from repro.service import (
    CanopusService,
    ServiceClient,
    TenantConfig,
)
from repro.service.loadgen import ServiceThread
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan
from repro.storage.placement import PlacementEngine
from repro.storage.policy import AccessTracker

CHUNKS = 9


def _drive(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def campaign_root(tmp_path_factory):
    src = make_xgc1(scale=0.3)
    root = tmp_path_factory.mktemp("querysvc")
    h = two_tier_titan(root, fast_capacity=48 << 20, slow_capacity=1 << 36)
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"},
        chunks=CHUNKS,
    )
    # Two campaigns with separate subfiles: queries hit only "hot", so
    # the access tracker must heat hot subfiles and leave "cold" alone.
    enc.encode("hot", "dpot", src.mesh, src.field, LevelScheme(3))
    enc.encode("cold", "dpot", src.mesh, src.field * 0.5, LevelScheme(3))
    return root, src


@pytest.fixture(scope="module")
def service(campaign_root):
    root, src = campaign_root
    get_restored_cache().clear()
    get_geometry_cache().clear()
    h = two_tier_titan(root, fast_capacity=48 << 20, slow_capacity=1 << 36)
    tenants = [
        TenantConfig(name="alice", token="tok-alice"),
        TenantConfig(
            name="cheap", token="tok-cheap",
            max_requests=2, window_seconds=3600.0,
        ),
    ]
    svc = CanopusService(h, tenants=tenants, workers=2, executor_workers=4)
    with ServiceThread(svc):
        yield svc, src
    get_restored_cache().clear()
    get_geometry_cache().clear()


def _counters(metrics: dict) -> dict:
    return {
        k: v for k, v in metrics["metrics"].items() if k.startswith("query.")
    }


class TestStatsPushdown:
    def test_whole_variable_exact_and_restore_free(self, service):
        svc, src = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                # First touch pays the (tiny) catalog read; the steady
                # state must then be read-free.
                await client.query_stats("hot", "dpot")
                before = await client.metrics()
                result = await client.query_stats("hot", "dpot")
                after = await client.metrics()
                return before, result, after

        before, result, after = _drive(run())
        assert result["pushdown"] is True
        assert result["restores"] == 0
        assert result["stats"]["vmax"] == pytest.approx(float(src.field.max()))
        assert result["stats"]["count"] == src.field.size
        delta = (
            after["metrics"].get("query.pushdown.fallback_restores", 0)
            - before["metrics"].get("query.pushdown.fallback_restores", 0)
        )
        assert delta == 0
        # The pushdown answer shipped no field bytes, so the tenant's
        # simulated read account did not move.
        assert (
            after["tenants"]["alice"]["total_sim_read_seconds"]
            == pytest.approx(
                before["tenants"]["alice"]["total_sim_read_seconds"]
            )
        )

    def test_windowed_stats_prune_chunks(self, service):
        svc, src = service
        center = src.mesh.vertices[int(np.argmax(src.field))]

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                before = await client.metrics()
                result = await client.query_stats(
                    "hot", "dpot", region=(center - 0.2, center + 0.2)
                )
                after = await client.metrics()
                return before, result, after

        before, result, after = _drive(run())
        assert result["pushdown"] is True and result["restores"] == 0
        assert result["pruned_chunks"] > 0
        assert result["chunks"] + result["pruned_chunks"] == CHUNKS
        assert (
            _counters(after).get("query.pruned_chunks", 0)
            > _counters(before).get("query.pruned_chunks", 0)
        )

    def test_quota_accounting_charges_query_responses(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                before = await client.metrics()
                await client.query_stats("hot", "dpot")
                after = await client.metrics()
                return before, after

        before, after = _drive(run())
        usage_b = before["tenants"]["alice"]
        usage_a = after["tenants"]["alice"]
        assert usage_a["total_requests"] > usage_b["total_requests"]
        assert usage_a["total_bytes"] > usage_b["total_bytes"]

    def test_query_routes_respect_request_quotas(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-cheap"
            ) as client:
                seen = 0
                with pytest.raises(QuotaError):
                    for _ in range(6):
                        await client.query_stats("hot", "dpot")
                        seen += 1
                return seen

        assert _drive(run()) >= 1


class TestBlobPushdown:
    def test_unreachable_threshold_is_restore_free(self, service):
        svc, src = service
        threshold = float(src.field.max()) * 2 + 1

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                await client.query_blobs("hot", "dpot", threshold=threshold)
                before = await client.metrics()
                result = await client.query_blobs(
                    "hot", "dpot", threshold=threshold
                )
                after = await client.metrics()
                return before, result, after

        before, result, after = _drive(run())
        assert result["count"] == 0
        assert result["restores"] == 0
        assert result["pruned_chunks"] == CHUNKS
        assert (
            _counters(after).get("query.pushdown.blob_restores", 0)
            == _counters(before).get("query.pushdown.blob_restores", 0)
        )
        assert (
            after["tenants"]["alice"]["total_sim_read_seconds"]
            == pytest.approx(
                before["tenants"]["alice"]["total_sim_read_seconds"]
            )
        )

    def test_surviving_threshold_pays_one_focused_restore(self, service):
        svc, src = service
        threshold = float(np.quantile(src.field, 0.995))

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                return await client.query_blobs(
                    "hot", "dpot", threshold=threshold, shape=(96, 96)
                )

        result = _drive(run())
        assert result["restores"] == 1
        assert result["count"] >= 1
        lo, hi = src.mesh.bounding_box()
        for blob in result["blobs"]:
            x, y = blob["center"]
            assert lo[0] <= x <= hi[0] and lo[1] <= y <= hi[1]

    def test_threshold_is_required(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                resp = await client._get(
                    "/v1/query/blobs?campaign=hot&var=dpot"
                )
                return resp.status, resp.parsed_json()

        status, payload = _drive(run())
        assert status == 400 and payload["code"] == "bad-request"


class TestPlanRoute:
    def test_plan_endpoint_explains_without_executing(self, service):
        svc, src = service
        center = src.mesh.vertices[int(np.argmax(src.field))]

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                return await client.plan(
                    "hot", "dpot", tolerance=1e-3,
                    region=(center - 0.2, center + 0.2),
                )

        plan = _drive(run())
        assert plan["mode"] == "tolerance"
        assert plan["complete"] is True
        assert plan["pruned_chunks"] > 0
        assert plan["planned_bytes"] > 0
        actions = {d["action"] for d in plan["decisions"]}
        assert actions == {"fetch", "skip"}

    def test_tolerance_restore_routes_through_planner(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                exact, _ = await client.restore("hot", "dpot", level=0)
                planned, meta = await client.restore(
                    "hot", "dpot", tolerance=1e-6
                )
                return exact, planned, meta

        exact, planned, meta = _drive(run())
        assert meta["level"] == 0
        assert np.array_equal(exact, planned)


class TestBadQueryShapes:
    def test_non_positive_tolerance_maps_to_400(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                with pytest.raises(RestorationError) as exc:
                    await client.restore("hot", "dpot", tolerance=0.0)
                return str(exc.value)

        assert "tolerance must be > 0" in _drive(run())

    def test_empty_region_maps_to_400(self, service):
        svc, _ = service

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                with pytest.raises(RestorationError) as exc:
                    await client.query_stats(
                        "hot", "dpot", region=((5.0, 5.0), (1.0, 1.0))
                    )
                return str(exc.value)

        assert "empty region" in _drive(run())


class TestElasticLoop:
    def test_served_queries_shift_plan_replacement(self, service):
        svc, src = service
        center = src.mesh.vertices[int(np.argmax(src.field))]

        async def run():
            async with ServiceClient(
                svc.host, svc.port, token="tok-alice"
            ) as client:
                for _ in range(3):
                    await client.restore("hot", "dpot", tolerance=1e-3)
                    await client.query_stats(
                        "hot", "dpot", region=(center - 0.2, center + 0.2)
                    )
                return await client.metrics()

        metrics = _drive(run())
        qlog = metrics["datanode"]["query"]["log"]
        assert qlog, "served queries must be recorded"
        assert {e["campaign"] for e in qlog} == {"hot"}
        assert metrics["datanode"]["query"]["tracked_reads"] > 0

        tracker = svc.datanode.tracker
        hierarchy = svc.hierarchy
        cold_plan = PlacementEngine(hierarchy).plan_replacement(
            AccessTracker()
        )
        hot_plan = PlacementEngine(hierarchy).plan_replacement(tracker)
        assert all(d.weight == 0.0 for d in cold_plan.decisions)
        weights = {d.key: d.weight for d in hot_plan.decisions}
        hot_subfiles = {k for k in weights if k.startswith("hot.")}
        cold_subfiles = {k for k in weights if k.startswith("cold.")}
        assert hot_subfiles and cold_subfiles
        assert any(weights[k] > 0 for k in hot_subfiles)
        assert all(weights[k] == 0 for k in cold_subfiles)
        # The shift is measurable: the served workload changes the plan's
        # expected read cost relative to the unobserved baseline.
        assert hot_plan.est_read_seconds != cold_plan.est_read_seconds
