#!/usr/bin/env python
"""Canopus as a compression pre-conditioner (paper §III-C3, Fig. 5).

Compares, on all three evaluation datasets, the storage footprint of

* **direct** multi-level compression — compress every level L0..L(N−1);
* **Canopus** — compress the base plus the (smoother) deltas,

across several codecs, printing the normalized sizes and the improvement
the delta trick buys.

Run:  python examples/compression_study.py
"""

import numpy as np

from repro.compress import get_codec, smoothness
from repro.core import LevelScheme, refactor
from repro.harness import print_table
from repro.simulations import make_dataset

CODECS = ["zfp", "sz", "deflate"]
REL_TOLERANCE = 1e-4


def study(dataset_name: str, num_levels: int = 3) -> list[dict]:
    ds = make_dataset(dataset_name, scale=0.3)
    result = refactor(ds.mesh, ds.field, LevelScheme(num_levels))
    rows = []
    for codec_name in CODECS:
        # One absolute error bound per variable (paper-style fixed
        # accuracy), applied identically to levels and deltas.
        params = (
            {"tolerance": REL_TOLERANCE * np.ptp(ds.field)}
            if codec_name in ("zfp", "sz")
            else {}
        )
        codec = get_codec(codec_name, **params)
        direct = sum(len(codec.encode(lvl)) for lvl in result.levels)
        canopus = len(codec.encode(result.base_field)) + sum(
            len(codec.encode(d)) for d in result.deltas
        )
        original = sum(lvl.nbytes for lvl in result.levels)
        rows.append(
            {
                "dataset": ds.name,
                "codec": codec_name,
                "direct": direct / original,
                "canopus": canopus / original,
                "improvement": f"{(1 - canopus / direct):.1%}",
            }
        )
    return rows


def main() -> None:
    all_rows = []
    for name in ("xgc1", "genasis", "cfd"):
        all_rows.extend(study(name))
    print_table(
        all_rows,
        title="Normalized multi-level storage size: direct vs Canopus (N=3)",
        precision=3,
    )

    # Why it works: deltas are smoother than the levels they encode.
    ds = make_dataset("xgc1", scale=0.3)
    result = refactor(ds.mesh, ds.field, LevelScheme(3))
    rows = []
    for label, sig in [
        ("L0", result.levels[0]),
        ("L1", result.levels[1]),
        ("L2 (base)", result.levels[2]),
        ("delta1-2", result.deltas[1]),
        ("delta0-1", result.deltas[0]),
    ]:
        s = smoothness(sig)
        rows.append(
            {
                "signal": label,
                "std": s.std,
                "range": s.value_range,
                "total_variation": s.total_variation,
            }
        )
    print_table(
        rows,
        title="XGC1 signal smoothness (deltas are the smoothest -> compress best)",
        precision=3,
    )


if __name__ == "__main__":
    main()
