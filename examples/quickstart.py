#!/usr/bin/env python
"""Quickstart: refactor, place, and progressively read one variable.

The 60-second tour of the Canopus workflow (paper Fig. 1):

1. build a two-tier storage hierarchy (tmpfs-like + Lustre-like);
2. encode a mesh field into a base dataset + two deltas with ZFP-style
   compression, placed across the tiers;
3. read it back progressively: base first (fast tier), then refine
   level by level, watching accuracy improve and I/O cost accumulate.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import (
    BPDataset,
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    ProgressiveReader,
    two_tier_titan,
)
from repro.analytics import cross_level_errors
from repro.mesh.generators import annulus


def main() -> None:
    # --- a synthetic simulation output --------------------------------
    mesh = annulus(60, 170)  # ~10k vertices, XGC1-plane-like topology
    v = mesh.vertices
    field = np.sin(3 * v[:, 0]) * np.cos(3 * v[:, 1]) + 0.5 * np.exp(
        -((v[:, 0] - 0.8) ** 2 + v[:, 1] ** 2) / 0.05
    )
    print(f"simulation output: {mesh}, {field.nbytes} bytes of float64")

    with tempfile.TemporaryDirectory() as workdir:
        # --- storage + write path (simulation side) -------------------
        hierarchy = two_tier_titan(
            workdir, fast_capacity=4 << 20, slow_capacity=1 << 32
        )
        encoder = CanopusEncoder(
            hierarchy, codec="zfp", codec_params={"tolerance": 1e-4}
        )
        report, _ = encoder.encode(
            "quickstart", "potential", mesh, field, LevelScheme(num_levels=3)
        )
        print("\nproducts written:")
        for key, nbytes in sorted(report.compressed_bytes.items()):
            print(f"  {key:30s} {nbytes:8d} B  -> {report.placed_tiers[key]}")
        print(
            f"field payloads: {report.payload_bytes} B compressed "
            f"(original {report.original_bytes} B)"
        )

        # --- read path (analytics side) --------------------------------
        decoder = CanopusDecoder(BPDataset.open("quickstart", hierarchy))
        reader = ProgressiveReader(decoder, "potential")
        print("\nprogressive retrieval:")
        for state in reader.levels():
            err = cross_level_errors(state.mesh, state.field, mesh, field)
            print(
                f"  level {state.level}: {state.mesh.num_vertices:6d} vertices, "
                f"NRMSE vs full accuracy = {err.nrmse:.2e}, "
                f"cumulative simulated I/O = {state.timings.io_seconds * 1e3:.3f} ms"
            )
        print("\nThe base level gives an instant preview from the fast tier;")
        print("each delta read from the slow tier halves the decimation ratio.")


if __name__ == "__main__":
    main()
