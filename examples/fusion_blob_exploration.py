#!/usr/bin/env python
"""Progressive blob exploration on synthetic XGC1 fusion data (paper §IV-D).

The workflow the paper motivates: a fusion scientist scans the
electrostatic potential (dpot) for high-energy blobs. With Canopus they

1. detect blobs on the low-accuracy base (instant, fast tier);
2. automatically refine until the blob count stabilizes;
3. zoom into one blob's neighborhood with a *focused* (region-of-interest)
   refinement that reads only the delta chunks covering that region.

Run:  python examples/fusion_blob_exploration.py
"""

import tempfile

import numpy as np

from repro import BPDataset, CanopusDecoder, CanopusEncoder, LevelScheme, two_tier_titan
from repro.analytics import (
    BlobDetectorParams,
    RasterSpec,
    blob_stats,
    detect_blobs,
    overlap_ratio,
    rasterize,
)
from repro.core import ProgressiveReader
from repro.simulations import make_xgc1

CONFIG1 = BlobDetectorParams(min_threshold=10, max_threshold=200, min_area=100)


def main() -> None:
    dataset = make_xgc1(scale=0.5)
    print(dataset.description)
    spec = RasterSpec.from_reference(dataset.mesh, dataset.field, (256, 256))
    reference_blobs = detect_blobs(
        rasterize(dataset.mesh, dataset.field, spec), CONFIG1
    )
    print(f"full-accuracy reference: {len(reference_blobs)} blobs\n")

    with tempfile.TemporaryDirectory() as workdir:
        hierarchy = two_tier_titan(
            workdir, fast_capacity=8 << 20, slow_capacity=1 << 34
        )
        # Chunked deltas enable the focused retrieval in step 3.
        encoder = CanopusEncoder(
            hierarchy,
            codec="zfp",
            codec_params={"tolerance": 1e-4, "mode": "relative"},
            chunks=16,
        )
        encoder.encode(
            "fusion", "dpot", dataset.mesh, dataset.field, LevelScheme(4)
        )

        decoder = CanopusDecoder(BPDataset.open("fusion", hierarchy))
        reader = ProgressiveReader(decoder, "dpot")

        # -- step 1+2: refine until blob count stops changing ----------
        def count_blobs(state) -> int:
            img = rasterize(state.mesh, state.plane(), spec)
            return len(detect_blobs(img, CONFIG1))

        print("progressive refinement:")
        last_count = count_blobs(reader.state)
        print(f"  level {reader.level} (base): {last_count} blobs")
        stable = 0
        while not reader.at_full_accuracy and stable < 1:
            state = reader.refine()
            count = count_blobs(state)
            stats = blob_stats(
                detect_blobs(rasterize(state.mesh, state.plane(), spec), CONFIG1)
            )
            print(
                f"  level {state.level}: {count} blobs, "
                f"avg diameter {stats.avg_diameter:.1f} px, "
                f"delta RMS {state.last_delta_rms:.2e}"
            )
            stable = stable + 1 if count == last_count else 0
            last_count = count
        print(f"stopped at level {reader.level} (blob count stabilized)")

        blobs = detect_blobs(
            rasterize(reader.state.mesh, reader.state.plane(), spec), CONFIG1
        )
        print(
            "overlap with full-accuracy blobs: "
            f"{overlap_ratio(blobs, reference_blobs):.0%}\n"
        )

        # -- step 3: focused high-accuracy zoom on the biggest blob ----
        if blobs and reader.level > 0:
            target = blobs[0]
            lo_b, hi_b = spec.bounds
            px = np.array(
                [
                    lo_b[0] + target.center[0] / spec.shape[1] * (hi_b[0] - lo_b[0]),
                    lo_b[1] + target.center[1] / spec.shape[0] * (hi_b[1] - lo_b[1]),
                ]
            )
            half = 0.25
            clock = hierarchy.clock
            decoder.prefetch_geometry("dpot")  # one-time static geometry
            before = clock.bytes_moved(op="read")
            state = reader.refine(region=(px - half, px + half))
            roi_bytes = clock.bytes_moved(op="read") - before
            refined = int(state.refined_mask.sum())
            print(
                f"focused refinement around blob at {px.round(2)}: "
                f"read {roi_bytes} B of deltas, refined {refined}/"
                f"{len(state.field)} vertices"
            )
            print("(a full refinement would have read every chunk)")


if __name__ == "__main__":
    main()
