#!/usr/bin/env python
"""Tour of the storage/I-O substrate: XML config, deep hierarchies,
capacity bypass, transports, and migration.

Shows the middleware features underneath the Canopus core:

* an ADIOS-style XML document configures a four-tier hierarchy and
  per-tier transports (POSIX on fast tiers, MPI_AGGREGATE on the PFS);
* placement walks down the pyramid and bypasses full tiers;
* the migration/eviction hook demotes cold products.

Run:  python examples/tiered_storage_tour.py
"""

import tempfile

from repro import BPDataset, CanopusDecoder, CanopusEncoder, LevelScheme
from repro.io import parse_config
from repro.simulations import make_genasis

XML_TEMPLATE = """
<canopus-config>
  <storage root="{root}">
    <tier name="nvram"  device="nvram"        capacity="256KiB"/>
    <tier name="ssd"    device="ssd"          capacity="4MiB"/>
    <tier name="lustre" device="lustre"       capacity="10GiB"/>
    <tier name="campaign" device="campaign"   capacity="1TiB"/>
  </storage>
  <transport tier="nvram"  method="POSIX"/>
  <transport tier="ssd"    method="POSIX"/>
  <transport tier="lustre" method="MPI_AGGREGATE" writers="128" aggregators="4"/>
  <transport tier="campaign" method="POSIX"/>
  <canopus levels="4" codec="zfp" tolerance="1e-4" decimation="2"/>
</canopus-config>
"""


def main() -> None:
    dataset = make_genasis(scale=0.15)
    print(dataset.description, "\n")

    with tempfile.TemporaryDirectory() as root:
        cfg = parse_config(XML_TEMPLATE.format(root=root))
        print("tiers:", " > ".join(cfg.hierarchy.tier_names()))
        print(
            "transports:",
            {t: tr.method for t, tr in cfg.transports.items()},
            "\n",
        )

        encoder = CanopusEncoder(
            cfg.hierarchy,
            codec=cfg.codec,
            codec_params={"tolerance": cfg.tolerance, "mode": "relative"},
            transports=cfg.transports,
        )
        report, _ = encoder.encode(
            "tour",
            dataset.variable,
            dataset.mesh,
            dataset.field,
            LevelScheme(cfg.levels, cfg.decimation),
        )

        print("placement (preferred tier vs actual, after capacity bypass):")
        for key in sorted(report.placed_tiers):
            print(
                f"  {key:28s} {report.compressed_bytes[key]:9d} B"
                f" -> {report.placed_tiers[key]}"
            )
        print("\ntier usage:")
        for name, usage in cfg.hierarchy.usage().items():
            print(
                f"  {name:10s} {usage['used']:>10d} / {usage['capacity']} B"
            )

        # Verify the data restores through the configured transports.
        decoder = CanopusDecoder(
            BPDataset.open("tour", cfg.hierarchy, cfg.transports)
        )
        full = decoder.restore_to(dataset.variable, 0)
        print(
            f"\nrestored to full accuracy: {len(full.field)} values, "
            f"simulated I/O {full.timings.io_seconds * 1e3:.2f} ms"
        )

        # Cold-data demotion: once the campaign goes quiet, evict the base
        # subfile from the scarce nvram tier (migration/eviction is the
        # future-work hook the paper calls out in §IV-B).
        rec = decoder.dataset.inq(f"{dataset.variable}/L3")
        print(f"\nevicting {rec.subfile!r} from {rec.tier!r} one tier down...")
        cfg.hierarchy.evict(rec.subfile)
        print("now on:", cfg.hierarchy.locate(rec.subfile).name)


if __name__ == "__main__":
    main()
