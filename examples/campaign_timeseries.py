#!/usr/bin/env python
"""Timestep campaign: write once per step, analyze the whole series.

Models the paper's production workload — a simulation emitting one field
snapshot per timestep, "written once but analyzed a number of times".
The campaign writer refactors the (static) mesh geometry once and stores
only base + delta payloads per step; the reader then runs a cross-step
analysis (tracking the strongest blob through time) at a *chosen*
accuracy, amortizing geometry I/O over the series.

Run:  python examples/campaign_timeseries.py
"""

import tempfile

import numpy as np

from repro.core import CampaignReader, CampaignWriter, LevelScheme
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

N_STEPS = 6


def main() -> None:
    ds = make_xgc1(scale=0.3)
    rng = np.random.default_rng(1)
    print(f"simulating {N_STEPS} timesteps of {ds.variable!r} on {ds.mesh}\n")

    with tempfile.TemporaryDirectory() as workdir:
        hierarchy = two_tier_titan(
            workdir, fast_capacity=16 << 20, slow_capacity=1 << 34
        )

        # --- simulation side: one write per step ----------------------
        writer = CampaignWriter(
            hierarchy, "campaign", ds.variable, ds.mesh, LevelScheme(3),
            codec="zfp", codec_params={"tolerance": 1e-4},
        )
        print(f"geometry refactored once in {writer.geometry_seconds:.2f} s")
        total_in = total_out = 0
        with writer:
            for step in range(N_STEPS):
                # Blobs drift and breathe a little between steps.
                drift = 0.08 * np.sin(
                    ds.mesh.vertices[:, 0] * 3 + 0.4 * step
                ) * np.cos(ds.mesh.vertices[:, 1] * 3 - 0.2 * step)
                field = ds.field * (1 + 0.02 * step) + drift
                field += rng.normal(0, 5e-4, ds.mesh.num_vertices)
                rep = writer.write_step(step, field)
                total_in += rep.original_bytes
                total_out += rep.compressed_bytes
                print(
                    f"  step {step}: {rep.compressed_bytes:7d} B "
                    f"({rep.reduction:.1f}x), refactor {rep.refactor_seconds*1e3:.0f} ms"
                )
        print(f"campaign total: {total_out} / {total_in} B "
              f"({total_in/total_out:.1f}x reduction)\n")

        # --- analytics side: trajectory at two accuracies -------------
        reader = CampaignReader(hierarchy, "campaign")
        reader.prefetch_geometry()
        print(
            "geometry prefetched once: "
            f"{reader.geometry_timings.io_seconds * 1e3:.2f} ms simulated I/O"
        )
        for level, label in [(2, "base (quick scan)"), (0, "full accuracy")]:
            maxima = []
            io = 0.0
            for _, data in reader.time_series(target_level=level):
                maxima.append(float(data.field.max()))
                io += data.timings.io_seconds
            trend = " -> ".join(f"{m:.3f}" for m in maxima)
            print(f"\n{label} (level {level}): per-series I/O {io*1e3:.3f} ms")
            print(f"  max(dpot) per step: {trend}")
        print(
            "\nThe quick scan shows the amplitude trend at a fraction of "
            "the I/O; full accuracy confirms it for the interesting steps."
        )


if __name__ == "__main__":
    main()
