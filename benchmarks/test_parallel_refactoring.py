"""Extension bench — embarrassingly parallel refactoring.

Paper §III-C1: "the decimation is done locally without requiring
communication with other processors, and therefore is embarrassingly
parallel." This bench partitions the paper-size XGC1 plane, refactors
the patches serially and on a process pool, verifies the restored
fields agree exactly, and reports the scaling.
"""

import os

import numpy as np
import pytest

from repro.core import LevelScheme
from repro.core.parallel import PartitionedDecoder, encode_partitioned
from repro.harness import format_table
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

PARTS = 8
TOL = 1e-4


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    ds = make_xgc1(scale=0.6)
    h = two_tier_titan(
        tmp_path_factory.mktemp("par"), fast_capacity=64 << 20,
        slow_capacity=1 << 36,
    )
    results = {}
    for label, processes in [("serial", None), ("pool", min(4, os.cpu_count() or 2))]:
        report, _ = encode_partitioned(
            h, f"run-{label}", "dpot", ds.mesh, ds.field, LevelScheme(3),
            parts=PARTS, processes=processes,
            codec_params={"tolerance": TOL, "mode": "relative"},
        )
        results[label] = report
    return ds, h, results


def test_parallel_table(runs, record_result):
    ds, _, results = runs
    rows = [
        {
            "mode": label,
            "parts": rep.parts,
            "refactor_wall_s": rep.refactor_seconds,
            "sum_part_s": sum(rep.per_part_seconds),
            "write_s": rep.write_seconds,
        }
        for label, rep in results.items()
    ]
    speedup = (
        results["serial"].refactor_seconds
        / max(results["pool"].refactor_seconds, 1e-9)
    )
    cpus = len(os.sched_getaffinity(0))
    record_result(
        "parallel_refactoring",
        format_table(rows, title="Partitioned refactoring, serial vs pool")
        + f"\n\npool speedup over serial: {speedup:.2f}x "
        f"({cpus} CPU(s) available; speedup tracks the CPU count — "
        "patches exchange zero data, so scaling is limited only by cores)",
    )


def test_results_identical(runs):
    _, h, _ = runs
    a = PartitionedDecoder(h, "run-serial").gather_full_accuracy()
    b = PartitionedDecoder(h, "run-pool").gather_full_accuracy()
    assert np.array_equal(a, b)


def test_restored_field_bounded(runs):
    ds, h, _ = runs
    out = PartitionedDecoder(h, "run-serial").gather_full_accuracy()
    rng = np.ptp(ds.field)
    assert np.abs(out - ds.field).max() <= 3 * TOL * rng + 1e-12


def test_per_part_work_balanced(runs):
    """Spatial binning yields patches of comparable refactor cost."""
    _, _, results = runs
    times = results["serial"].per_part_seconds
    assert max(times) < 8 * (sum(times) / len(times))


def test_partition_benchmark(benchmark):
    from repro.mesh import partition_mesh

    ds = make_xgc1(scale=0.4)
    benchmark(lambda: partition_mesh(ds.mesh, PARTS))
