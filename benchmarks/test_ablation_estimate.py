"""Ablation — the form of Estimate() (paper §III-C2).

The paper fixes α = β = γ = 1/3 and notes "the optimal form for
Estimate(·) is left for future study". This ablation compares the mean
estimator against barycentric weights (linear-exact interpolation):
barycentric deltas are smaller and smoother, so they compress better —
at the cost of serializing per-vertex weights in the mapping metadata.
"""

import numpy as np
import pytest

from repro.compress import get_codec, smoothness
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_dataset

DATASETS = ["xgc1", "cfd"]
REL_TOL = 1e-4


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for name in DATASETS:
        ds = make_dataset(name, scale=0.3)
        tol = REL_TOL * float(np.ptp(ds.field))
        codec = get_codec("zfp", tolerance=tol)
        for estimator in ("mean", "barycentric"):
            result = refactor(
                ds.mesh, ds.field, LevelScheme(3), estimator=estimator
            )
            delta_bytes = sum(len(codec.encode(d)) for d in result.deltas)
            mapping_bytes = sum(len(m.to_bytes()) for m in result.mappings)
            rows.append(
                {
                    "dataset": name,
                    "estimator": estimator,
                    "delta_std": float(
                        np.mean([smoothness(d).std for d in result.deltas])
                    ),
                    "delta_bytes": delta_bytes,
                    "mapping_bytes": mapping_bytes,
                    "total_bytes": delta_bytes + mapping_bytes,
                }
            )
    return rows


def test_estimate_ablation_table(comparison, record_result):
    record_result(
        "ablation_estimate",
        format_table(
            comparison,
            title="Ablation: Estimate() = mean (paper) vs barycentric",
        ),
    )


def test_barycentric_deltas_smaller(comparison):
    by = {(r["dataset"], r["estimator"]): r for r in comparison}
    for name in DATASETS:
        mean_row = by[(name, "mean")]
        bary_row = by[(name, "barycentric")]
        # Linear-exact estimation ⇒ smaller-amplitude deltas…
        assert bary_row["delta_std"] < mean_row["delta_std"]
        assert bary_row["delta_bytes"] < mean_row["delta_bytes"]
        # …but bigger mapping metadata (weights serialized).
        assert bary_row["mapping_bytes"] > mean_row["mapping_bytes"]


def test_both_estimators_restore_exactly(benchmark):
    """Correctness is estimator-independent (delta absorbs the error)."""
    from repro.core.delta import apply_delta

    ds = make_dataset("xgc1", scale=0.2)
    for estimator in ("mean", "barycentric"):
        result = refactor(ds.mesh, ds.field, LevelScheme(3), estimator=estimator)
        state = result.base_field
        for lvl in (1, 0):
            state = apply_delta(state, result.deltas[lvl], result.mappings[lvl])
        assert np.allclose(state, ds.field, atol=1e-12)

    result = refactor(ds.mesh, ds.field, LevelScheme(2), estimator="barycentric")
    benchmark(
        lambda: apply_delta(result.levels[1], result.deltas[0], result.mappings[0])
    )
