"""Figure 11 — CFD pipeline phase times and full-accuracy restoration.

Same protocol as Fig. 10; the paper sweeps the CFD dataset over the
shallower decimation ratios {2, 4, 8} (the mesh is only 12.6k
triangles).
"""

import pytest

from pipeline_common import (
    assert_pipeline_shape,
    record_bench_json,
    run_pipeline_sweep,
)

RATIOS = [2, 4, 8]


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    return run_pipeline_sweep(
        "cfd",
        tmp_path_factory.mktemp("fig11"),
        scale=1.0,
        planes=32,
        ratios=RATIOS,
    )


def test_fig11_tables(sweep, record_result):
    record_result("fig11_cfd_pipeline", "Fig.11 " + sweep.tables())
    record_bench_json("fig11_cfd", sweep.to_json())


def test_fig11_pipeline_shape(sweep):
    assert_pipeline_shape(sweep)


def test_fig11_pressure_field_error_bounded(sweep):
    assert sweep.max_restore_error <= 4 * 1e-4 * sweep.field_range


def test_fig11_locate_benchmark(benchmark):
    from repro.mesh import TriangleLocator
    from repro.simulations import make_cfd

    ds = make_cfd(scale=0.5)
    locator = TriangleLocator(ds.mesh)
    pts = ds.mesh.triangle_centroids()
    benchmark(lambda: locator.locate(pts))
