"""Retrieval-engine pipelining on the Fig. 9 XGC1 workload.

The tentpole claim for the concurrent retrieval engine: refining a
variable to full accuracy through the pipelined progressive reader
(prefetch next levels while the current delta decompresses; batches
charged with the overlap model) costs at least 1.5x less simulated I/O
time than the serial product-at-a-time reader — and restores the exact
same bits.
"""

import math

import numpy as np
import pytest

from repro.api import read_progressive
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.harness.experiment import stack_planes
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import record_bench_json

RATIO = 32
PLANES = 32
SCALE = 0.5
REL_TOL = 1e-4


@pytest.fixture(scope="module")
def encoded(tmp_path_factory):
    dataset = make_xgc1(scale=SCALE)
    field = stack_planes(dataset, PLANES)
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("engine-speedup"),
        fast_capacity=256 << 20,
        slow_capacity=1 << 38,
    )
    levels = int(math.log2(RATIO)) + 1
    encoder = CanopusEncoder(
        hierarchy,
        codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
    )
    encoder.encode(
        "xgc1-engine", dataset.variable, dataset.mesh, field, LevelScheme(levels)
    )
    return hierarchy, dataset.variable


def _refine_to_full(hierarchy, var, *, pipeline):
    """Fresh dataset handle, refine to L0; returns (field, sim seconds)."""
    ds = BPDataset.open("xgc1-engine", hierarchy)
    reader = read_progressive(ds, var, pipeline=pipeline)
    before = hierarchy.clock.elapsed
    state = reader.refine_until(rms_tolerance=0.0, max_level=0)
    cost = hierarchy.clock.elapsed - before
    stats = ds.engine_stats()
    ds.close()
    return state.field, cost, stats


def test_pipelined_refinement_speedup(encoded, record_result):
    hierarchy, var = encoded
    serial_field, serial_cost, _ = _refine_to_full(
        hierarchy, var, pipeline=False
    )
    pipe_field, pipe_cost, stats = _refine_to_full(
        hierarchy, var, pipeline=True
    )

    # Pipelining changes when bytes move, never what is applied.
    np.testing.assert_array_equal(serial_field, pipe_field)

    speedup = serial_cost / pipe_cost
    record_result(
        "engine_pipeline_speedup",
        "Retrieval-engine pipelining, XGC1 ratio-32 full refinement\n"
        f"  serial    io charge: {serial_cost:.4f} s\n"
        f"  pipelined io charge: {pipe_cost:.4f} s\n"
        f"  speedup:             {speedup:.2f}x\n"
        f"  prefetch issued/useful: {stats.prefetch_issued}"
        f"/{stats.prefetch_useful}",
    )
    record_bench_json(
        "engine_speedup",
        {
            "name": "engine_speedup:xgc1",
            "meta": {"dataset": "xgc1", "ratio": RATIO, "planes": PLANES},
            "metrics": {
                "serial_io_seconds": serial_cost,
                "pipelined_io_seconds": pipe_cost,
                "speedup": speedup,
                "prefetch_issued": stats.prefetch_issued,
                "prefetch_useful": stats.prefetch_useful,
            },
        },
    )
    assert speedup >= 1.5, (serial_cost, pipe_cost)
    assert stats.prefetch_useful > 0


def test_repeated_query_hits_cache(encoded):
    hierarchy, var = encoded
    ds = BPDataset.open("xgc1-engine", hierarchy)
    dec = CanopusDecoder(ds)
    dec.restore_to(var, 0)
    before = hierarchy.clock.elapsed
    dec.restore_to(var, 0)  # parameter-sensitivity style repeat
    assert hierarchy.clock.elapsed == before  # fully served from cache
    stats = ds.engine_stats()
    assert stats.hits > 0
    assert stats.bytes_from_cache > 0
    ds.close()
