"""Ablation — refactoring method: mesh decimation vs byte splitting.

Paper §III-C: "Canopus supports various approaches to refactoring data,
including byte splitting, block splitting, and mesh decimation … we
focus on mesh decimation because 1) it can reduce data size aggressively
(e.g., by a factor of 1000) … 3) it can generate a lower-accuracy
dataset that is complete in geometry".

This ablation quantifies the trade: for comparable base sizes, what
accuracy does each method's base product deliver, and how far can each
shrink the base at all?
"""

import numpy as np
import pytest

from repro.analytics import cross_level_errors, field_errors
from repro.core import (
    LevelScheme,
    block_restore,
    block_split,
    byte_restore,
    byte_split,
    refactor,
)
from repro.harness import format_table
from repro.simulations import make_xgc1


@pytest.fixture(scope="module")
def comparison():
    ds = make_xgc1(scale=0.4)
    rows = []

    # Byte splitting: base = top-k bytes of every value (k = 2, 4).
    for k, plan in [(2, (2, 2, 4)), (4, (4, 2, 2))]:
        products = byte_split(ds.field, plan=plan)
        approx = byte_restore(products[:1])
        err = field_errors(approx, ds.field)
        rows.append(
            {
                "method": f"byte_split(top {k}B)",
                "base_fraction": k / 8,
                "base_bytes": len(products[0].payload),
                "nrmse": err.nrmse,
                "geometry_complete": True,  # all vertices, less precision
            }
        )

    # Block splitting (JPEG2000-like quality layers): base = layer 0.
    span = float(np.ptp(ds.field))
    layers = block_split(
        ds.field, (0.05 * span, 1e-3 * span, 1e-5 * span), block=2048
    )
    approx = block_restore(layers[:1], count=ds.field.size)
    err = field_errors(approx, ds.field)
    rows.append(
        {
            "method": "block_split(layer 0)",
            "base_fraction": layers[0].nbytes / ds.field.nbytes,
            "base_bytes": layers[0].nbytes,
            "nrmse": err.nrmse,
            "geometry_complete": True,  # full resolution, low precision
        }
    )

    # Mesh decimation at ratios 4 and 16 (raw double base, no codec),
    # with both collapse kernels: the serial heap loop (Algorithm 1) and
    # the round-based batched kernel.
    for levels, ratio in [(3, 4), (5, 16)]:
        for kernel in ("serial", "batched"):
            result = refactor(
                ds.mesh, ds.field, LevelScheme(levels), method=kernel
            )
            err = cross_level_errors(
                result.base_mesh, result.base_field, ds.mesh, ds.field
            )
            rows.append(
                {
                    "method": f"decimation(ratio {ratio}, {kernel})",
                    "base_fraction": 1.0 / ratio,
                    "base_bytes": result.base_field.nbytes,
                    "nrmse": err.nrmse,
                    "geometry_complete": True,  # complete coarse mesh
                }
            )
    return ds, rows


def test_refactor_method_table(comparison, record_result):
    _, rows = comparison
    record_result(
        "ablation_refactor_method",
        format_table(
            rows, title="Ablation: mesh decimation vs byte splitting"
        ),
    )


def test_decimation_reaches_smaller_bases(comparison):
    """Byte splitting cannot shrink the base below 1/8 of the data;
    decimation goes arbitrarily far (the paper's reason 1)."""
    _, rows = comparison
    byte_min = min(r["base_fraction"] for r in rows if "byte" in r["method"])
    dec_min = min(r["base_fraction"] for r in rows if "decimation" in r["method"])
    assert byte_min >= 1 / 8
    assert dec_min < 1 / 8


def test_both_methods_usable_accuracy(comparison):
    _, rows = comparison
    for row in rows:
        assert row["nrmse"] < 0.25, row


def test_byte_split_benchmark(benchmark):
    ds = make_xgc1(scale=0.4)
    benchmark(lambda: byte_split(ds.field, plan=(2, 2, 4)))
