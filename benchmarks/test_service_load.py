"""Service elasticity: hundreds of concurrent clients vs serial reads.

The pre-service world is every consumer linking the library and
restoring for itself — a fresh decoder per read, no shared restored
state, one request at a time. The read tier's pitch is that one
deployment absorbs hundreds of concurrent analytics clients against
the same campaign, amortizing decode work through the process-wide
restored-level cache. This harness boots a :class:`CanopusService` on
its own thread (fig9-scale XGC1 campaign, 3 variables, 3 levels) and
measures

* the **serial library baseline** — one consumer, one request at a
  time, a fresh engine per request with the restored cache off (the
  seed world every service request would otherwise pay);
* a **serial HTTP baseline** — one keep-alive client against the warm
  service (recorded for transparency; shows per-request wire cost);
* the **concurrent run** — ``REPRO_SERVICE_CLIENTS`` (default 200)
  async clients split across four tenants, each issuing a
  deterministic (var, level) mix.

Every concurrent payload is verified bit-for-bit against a direct
in-process :class:`DecodeEngine` restore, and the aggregate concurrent
throughput must be ≥3× the serial library baseline. The structured
result (all reports, p50/p95/p99 latency via the obs bucketed
histograms, per-tenant ``repro.obs`` counters) lands in
``benchmarks/results/BENCH_service.json``.

A second, *traced* pass re-runs the same concurrent mix against a
fresh service with ``tracing=True`` and ``sample_rate=1.0`` (the
headline numbers above stay untraced — the disabled-tracing fast path
is the thing being benchmarked). Its assertions are the PR's
end-to-end attribution acceptance: every kept request is a single
span tree rooted on the service loop and spanning data-node/engine
threads, and the per-request SimClock read-seconds sum (within
rounding) to the per-tenant ``service.sim_read_seconds`` counters.
The slowest request's span tree is exported as a Chrome/Perfetto
trace (``results/trace_sample.json``) for the CI artifact.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.harness import format_table, json_report
from repro.harness.experiment import stack_planes
from repro.harness.report import write_json_report
from repro.io import BPDataset
from repro.obs import get_registry
from repro.obs.sinks import write_chrome_trace
from repro.service import CanopusService, TenantConfig
from repro.service.loadgen import LoadReport, ServiceThread, run_load, serial_baseline
from repro.session import Session
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import RESULTS_DIR

SCALE = 0.5  # Fig. 9's XGC1 scale
PLANES = 4
LEVELS = 3
CHUNKS = 8
VARIABLES = ["dpot", "apar", "dden"]
REQUEST_LEVELS = [0, 1, 2]
REL_TOL = 1e-4
MIN_SPEEDUP = 3.0

#: Concurrent client count; CI's smoke job scales this down to 50.
CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "200"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_SERVICE_REQUESTS", "3"))
SERIAL_REQUESTS = int(os.environ.get("REPRO_SERVICE_SERIAL_REQUESTS", "45"))

TENANTS = [
    TenantConfig(name=f"tenant-{i}", token=f"tok-{i}") for i in range(4)
]


def _serial_library_baseline(
    hierarchy, expected: dict[tuple[str, int], np.ndarray], requests: int
):
    """The pre-service world: fresh engine per request, no shared cache."""
    import time

    from repro.core.decode_engine import DecodeEngine

    mismatches = 0
    t0 = time.perf_counter()
    for i in range(requests):
        var = VARIABLES[i % len(VARIABLES)]
        level = REQUEST_LEVELS[i % len(REQUEST_LEVELS)]
        engine = DecodeEngine(
            BPDataset.open("fig9-multi", hierarchy),
            workers=1, use_restored_cache=False, pipeline=False,
        )
        state = engine.restore(var, level)
        if not np.array_equal(state.field, expected[(var, level)]):
            mismatches += 1
    wall = time.perf_counter() - t0
    return {
        "requests": requests,
        "mismatches": mismatches,
        "wall_seconds": wall,
        "rps": requests / wall if wall else 0.0,
    }


def _traced_metrics(load_results) -> dict:
    """JSON-ready summary of the traced pass for BENCH_service.json."""
    traces = load_results["traced_traces"]
    usage = load_results["traced_usage"]
    return {
        "requests": sum(r.requests for r in load_results["traced_reports"]),
        "failures": sum(r.failures for r in load_results["traced_reports"]),
        "kept_traces": len(traces),
        "buffer": load_results["traced_stats"],
        "trace_sim_read_seconds": sum(t.sim_read_seconds for t in traces),
        "tenant_sim_read_seconds": sum(
            u["total_sim_read_seconds"] for u in usage.values()
        ),
        "threads": sorted({s.thread for t in traces for s in t.spans}),
    }


@pytest.fixture(scope="module")
def load_results(tmp_path_factory):
    src = make_xgc1(scale=SCALE, seed=9)
    base = stack_planes(src, PLANES)
    rng = np.random.default_rng(9)
    fields = {
        "dpot": base,
        "apar": 0.5 * base + 0.05 * rng.standard_normal(base.shape),
        "dden": np.abs(base) + 0.01,
    }

    root = tmp_path_factory.mktemp("service-load")
    hierarchy = two_tier_titan(
        root, fast_capacity=256 << 20, slow_capacity=1 << 38
    )
    encoder = CanopusEncoder(
        hierarchy,
        codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
        chunks=CHUNKS,
    )
    ds_w = BPDataset.create("fig9-multi", hierarchy)
    for var, field in fields.items():
        encoder.encode(
            "fig9-multi", var, src.mesh, field, LevelScheme(LEVELS),
            dataset=ds_w, close=False,
        )
    ds_w.close()

    get_restored_cache().clear()
    get_geometry_cache().clear()

    # Reference payloads from a direct in-process engine (what every
    # wire payload must equal bit-for-bit).
    expected: dict[tuple[str, int], np.ndarray] = {}
    ref_h = two_tier_titan(root, fast_capacity=256 << 20,
                           slow_capacity=1 << 38)
    with Session(ref_h, workers=4) as session:
        camp = session.open("fig9-multi")
        for var in VARIABLES:
            for level in REQUEST_LEVELS:
                expected[(var, level)] = camp.restore(
                    var, level=level
                ).field.copy()

    # Pre-service world, measured before the service warms anything.
    lib_h = two_tier_titan(root, fast_capacity=256 << 20,
                           slow_capacity=1 << 38)
    serial_library = _serial_library_baseline(
        lib_h, expected, SERIAL_REQUESTS
    )

    svc_h = two_tier_titan(root, fast_capacity=256 << 20,
                           slow_capacity=1 << 38)
    service = CanopusService(
        svc_h, tenants=list(TENANTS), workers=4, executor_workers=8
    )

    async def _measure(host: str, port: int):
        # Warm pass: one client touches every (var, level) once so both
        # measured runs hit the same steady-state (restored caches hot).
        warm = await serial_baseline(
            host, port, "fig9-multi", VARIABLES,
            requests=len(VARIABLES) * len(REQUEST_LEVELS),
            levels=REQUEST_LEVELS, token=TENANTS[0].token,
            expected=expected,
        )
        serial = await serial_baseline(
            host, port, "fig9-multi", VARIABLES,
            requests=SERIAL_REQUESTS, levels=REQUEST_LEVELS,
            token=TENANTS[0].token, expected=expected,
        )
        per_tenant = max(1, CLIENTS // len(TENANTS))
        reports = await asyncio.gather(*(
            run_load(
                host, port, "fig9-multi", VARIABLES,
                clients=per_tenant, requests_per_client=REQUESTS_PER_CLIENT,
                levels=REQUEST_LEVELS, token=t.token, expected=expected,
            )
            for t in TENANTS
        ))
        return warm, serial, reports

    with ServiceThread(service):
        warm, serial, reports = asyncio.run(
            _measure(service.host, service.port)
        )
        tenant_usage = service.tenants.usage()
        obs_snapshot = get_registry().prefix_snapshot("service")
        datanode_metrics = service.datanode.metrics()

    get_restored_cache().clear()
    get_geometry_cache().clear()

    # -- traced pass: same mix, tracing on, every request kept ----------
    # Fresh hierarchy + tenants so counters start from zero, cold
    # process caches so the run actually charges simulated reads.
    traced_tenants = [
        TenantConfig(name=t.name, token=t.token) for t in TENANTS
    ]
    traced_service = CanopusService(
        two_tier_titan(root, fast_capacity=256 << 20, slow_capacity=1 << 38),
        tenants=traced_tenants,
        workers=4,
        executor_workers=8,
        tracing=True,
        trace_capacity=8192,
        trace_sample_rate=1.0,
    )

    async def _traced(host: str, port: int):
        per_tenant = max(1, CLIENTS // len(TENANTS))
        return await asyncio.gather(*(
            run_load(
                host, port, "fig9-multi", VARIABLES,
                clients=per_tenant, requests_per_client=REQUESTS_PER_CLIENT,
                levels=REQUEST_LEVELS, token=t.token, expected=expected,
            )
            for t in traced_tenants
        ))

    with ServiceThread(traced_service):
        traced_reports = asyncio.run(
            _traced(traced_service.host, traced_service.port)
        )
        buffer = traced_service.trace_buffer
        traced_traces = buffer.list(limit=100000)
        traced_stats = buffer.stats()
        traced_usage = traced_service.tenants.usage()
        slowest = buffer.slowest(1)
        if slowest:
            write_chrome_trace(
                RESULTS_DIR / "trace_sample.json", slowest[0].spans
            )

    get_restored_cache().clear()
    get_geometry_cache().clear()

    total_requests = sum(r.requests for r in reports)
    total_failures = sum(r.failures for r in reports)
    total_mismatches = sum(r.mismatches for r in reports)
    total_bytes = sum(r.bytes_served for r in reports)
    wall = max(r.wall_seconds for r in reports)
    concurrent_rps = total_requests / wall if wall else 0.0
    merged = LoadReport(clients=len(TENANTS) * max(1, CLIENTS // len(TENANTS)))
    for r in reports:
        merged.latencies.extend(r.latencies)

    return {
        "warm": warm,
        "serial_library": serial_library,
        "serial": serial,
        "reports": reports,
        "clients": len(TENANTS) * max(1, CLIENTS // len(TENANTS)),
        "total_requests": total_requests,
        "total_failures": total_failures,
        "total_mismatches": total_mismatches,
        "total_bytes": total_bytes,
        "wall_seconds": wall,
        "concurrent_rps": concurrent_rps,
        "latency": merged.latency_summary(),
        "tenant_usage": tenant_usage,
        "obs_snapshot": obs_snapshot,
        "datanode_metrics": datanode_metrics,
        "vertices": src.mesh.num_vertices,
        "traced_reports": traced_reports,
        "traced_traces": traced_traces,
        "traced_stats": traced_stats,
        "traced_usage": traced_usage,
    }


def test_load_and_report(load_results, record_result):
    serial_lib = load_results["serial_library"]
    serial_http = load_results["serial"]
    speedup = (
        load_results["concurrent_rps"] / serial_lib["rps"]
        if serial_lib["rps"] else 0.0
    )

    rows = [
        {
            "mode": "serial library (fresh engine/request, no cache)",
            "clients": 1,
            "requests": serial_lib["requests"],
            "wall_s": f"{serial_lib['wall_seconds']:.3f}",
            "rps": f"{serial_lib['rps']:.1f}",
        },
        {
            "mode": "serial HTTP (1 keep-alive client, warm tier)",
            "clients": 1,
            "requests": serial_http.requests,
            "wall_s": f"{serial_http.wall_seconds:.3f}",
            "rps": f"{serial_http.rps:.1f}",
        },
        {
            "mode": f"concurrent ({len(TENANTS)} tenants)",
            "clients": load_results["clients"],
            "requests": load_results["total_requests"],
            "wall_s": f"{load_results['wall_seconds']:.3f}",
            "rps": f"{load_results['concurrent_rps']:.1f}",
        },
    ]
    record_result(
        "service_load",
        format_table(
            rows,
            title=(
                f"read-tier throughput, xgc1 scale {SCALE} "
                f"({load_results['vertices']} vertices, {PLANES} planes, "
                f"{len(VARIABLES)} vars x levels {REQUEST_LEVELS}) — "
                f"{speedup:.1f}x aggregate over serial"
            ),
        ),
    )

    report = json_report(
        "service_load",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "planes": PLANES,
            "vertices": load_results["vertices"],
            "levels": LEVELS,
            "chunks": CHUNKS,
            "variables": VARIABLES,
            "request_levels": REQUEST_LEVELS,
            "clients": load_results["clients"],
            "requests_per_client": REQUESTS_PER_CLIENT,
            "tenants": [t.name for t in TENANTS],
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
        },
        metrics={
            "serial_library": serial_lib,
            "serial_http": serial_http.to_dict(),
            "concurrent": {
                "clients": load_results["clients"],
                "requests": load_results["total_requests"],
                "failures": load_results["total_failures"],
                "mismatches": load_results["total_mismatches"],
                "bytes_served": load_results["total_bytes"],
                "wall_seconds": load_results["wall_seconds"],
                "rps": load_results["concurrent_rps"],
                "latency": load_results["latency"],
                "per_tenant": [r.to_dict() for r in load_results["reports"]],
            },
            "traced": _traced_metrics(load_results),
            "throughput_speedup": speedup,
            "min_speedup_required": MIN_SPEEDUP,
            "tenant_usage": load_results["tenant_usage"],
            "obs_service_counters": load_results["obs_snapshot"],
            "restored_cache": load_results["datanode_metrics"][
                "restored_cache"
            ],
            "bit_identical": load_results["total_mismatches"] == 0,
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_service.json", report)

    assert load_results["total_failures"] == 0
    assert serial_lib["mismatches"] == 0
    assert speedup >= MIN_SPEEDUP, (
        f"concurrent {load_results['concurrent_rps']:.1f} rps vs serial "
        f"library {serial_lib['rps']:.1f} rps — only {speedup:.2f}x"
    )


def test_payloads_bit_identical(load_results):
    """Every concurrent wire payload equals the direct engine restore."""
    assert load_results["total_mismatches"] == 0
    assert load_results["warm"].mismatches == 0


def test_per_tenant_metrics_visible(load_results):
    """Each tenant's usage shows up in both the registry and obs."""
    usage = load_results["tenant_usage"]
    obs = load_results["obs_snapshot"]
    for tenant in TENANTS:
        assert usage[tenant.name]["total_requests"] > 0
        assert usage[tenant.name]["total_bytes"] > 0
        assert obs.get(f"service.requests{{tenant={tenant.name}}}", 0) > 0


def test_traced_requests_are_single_span_trees(load_results):
    """Every kept request is one tree spanning service/data/engine threads."""
    traces = load_results["traced_traces"]
    stats = load_results["traced_stats"]
    assert sum(r.failures for r in load_results["traced_reports"]) == 0
    assert stats["dropped"] == 0  # sample_rate=1.0 keeps everything
    assert stats["kept"] == stats["finished"]
    restores = [t for t in traces if t.route.endswith("/restore")]
    assert restores
    for t in restores:
        roots = [s for s in t.spans if s.parent_id is None]
        assert len(roots) == 1, t.to_summary()
        assert roots[0].name.startswith("http GET"), roots[0].name
        assert all(s.trace_id == t.trace_id for s in t.spans)
    threads = {s.thread for t in restores for s in t.spans}
    assert any(th.startswith("repro-datanode") for th in threads), threads
    assert any(
        th.startswith(("repro-io", "repro-decode", "repro-restore"))
        for th in threads
    ), threads


def test_traced_sim_read_matches_tenant_counters(load_results):
    """Per-request SimClock read-seconds sum to the tenant counters."""
    import math

    traced = _traced_metrics(load_results)
    assert traced["trace_sim_read_seconds"] > 0
    assert math.isclose(
        traced["trace_sim_read_seconds"],
        traced["tenant_sim_read_seconds"],
        rel_tol=1e-6,
        abs_tol=1e-9,
    ), traced
