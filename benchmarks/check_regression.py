#!/usr/bin/env python
"""Bench-regression gate: fresh BENCH_*.json vs the committed baselines.

CI regenerates every ``benchmarks/results/BENCH_*.json`` by running the
benchmark suites, then runs this script. It compares each wall-time-like
leaf (keys ending in ``seconds``, excluding simulated-attribution and
configuration values) against the committed version of the same file
(``git show HEAD:benchmarks/results/<name>``) and exits non-zero when a
fresh value regressed by more than the tolerance (default 25%, override
with ``--tolerance`` or ``REPRO_BENCH_TOLERANCE``).

Rules keeping the gate honest on noisy runners:

* baselines below ``--min-seconds`` (default 0.05 s) are skipped — the
  timer floor dominates them;
* leaves present only on one side are skipped (new metrics are not
  regressions);
* files with no committed baseline are skipped (first run of a new
  benchmark);
* improvements never fail, however large.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Benchmarks the CI gate checks by default (invoked with no file
#: arguments). Add new BENCH_*.json names here once a committed baseline
#: exists; results not listed are still comparable by passing them
#: explicitly.
DEFAULT_GATED = (
    "BENCH_refactor.json",
    "BENCH_decode.json",
    "BENCH_placement.json",
    "BENCH_service.json",
    "BENCH_encode_scaleout.json",
    "BENCH_query.json",
    "BENCH_durability.json",
)

#: Leaf-name fragments that are *not* wall-time measurements: simulated
#: attribution counters, estimates, and policy knobs.
EXCLUDE_FRAGMENTS = ("sim", "est", "target", "slow", "retry")


def wall_time_leaves(doc, path: str = "") -> dict[str, float]:
    """``{json.path: value}`` for every comparable timing leaf."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(wall_time_leaves(value, f"{path}.{key}" if path else key))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            out.update(wall_time_leaves(value, f"{path}[{i}]"))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith("seconds") and not any(
            frag in leaf for frag in EXCLUDE_FRAGMENTS
        ):
            out[path] = float(doc)
    return out


def committed_baseline(path: Path) -> dict | None:
    """The committed (HEAD) version of ``path``, or None if absent."""
    rel = path.resolve().relative_to(REPO_ROOT.resolve())
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel.as_posix()}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except ValueError:
        return None


def check_file(
    path: Path, *, tolerance: float, min_seconds: float
) -> tuple[list[str], int]:
    """Returns (regression messages, number of leaves compared)."""
    fresh_doc = json.loads(path.read_text(encoding="utf-8"))
    baseline_doc = committed_baseline(path)
    if baseline_doc is None:
        print(f"  {path.name}: no committed baseline, skipped")
        return [], 0
    fresh = wall_time_leaves(fresh_doc)
    baseline = wall_time_leaves(baseline_doc)
    regressions: list[str] = []
    compared = 0
    for key in sorted(set(fresh) & set(baseline)):
        base = baseline[key]
        now = fresh[key]
        if base < min_seconds:
            continue
        compared += 1
        if now > base * (1.0 + tolerance):
            regressions.append(
                f"{path.name}: {key} regressed "
                f"{base:.3f}s -> {now:.3f}s ({now / base:.2f}x)"
            )
    print(f"  {path.name}: {compared} timing leaves compared")
    return regressions, compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="BENCH json files (default: the DEFAULT_GATED set)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="skip baselines below this many seconds (default 0.05)",
    )
    args = parser.parse_args(argv)
    if args.files:
        files = args.files
    else:
        files = []
        for name in DEFAULT_GATED:
            path = RESULTS_DIR / name
            if path.exists():
                files.append(path)
            else:
                print(f"  {name}: not produced this run, skipped")
    if not files:
        print("no BENCH_*.json files found; nothing to check")
        return 0
    print(
        f"bench regression gate: tolerance {args.tolerance:.0%}, "
        f"noise floor {args.min_seconds}s"
    )
    all_regressions: list[str] = []
    total = 0
    for path in files:
        regressions, compared = check_file(
            path, tolerance=args.tolerance, min_seconds=args.min_seconds
        )
        all_regressions.extend(regressions)
        total += compared
    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} regression(s):")
        for line in all_regressions:
            print(f"  {line}")
        return 1
    print(f"OK: no regressions across {total} compared timings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
