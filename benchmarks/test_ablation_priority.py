"""Ablation — edge-collapse priority (paper §III-C1).

The paper collapses shortest edges first and notes "choosing the
priority of an edge is application dependent and is left for future
study". This ablation compares ``length`` against ``data_aware``
(length inflated by the field jump across the edge): the data-aware
priority preserves features better at the same decimation ratio —
lower cross-level error on the decimated levels.
"""

import numpy as np
import pytest

from repro.analytics import cross_level_errors
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_dataset

PRIORITIES = ["length", "data_aware"]


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for name in ("xgc1", "cfd"):
        ds = make_dataset(name, scale=0.3)
        for priority in PRIORITIES:
            result = refactor(
                ds.mesh, ds.field, LevelScheme(3), priority=priority
            )
            err = cross_level_errors(
                result.meshes[2], result.levels[2], ds.mesh, ds.field
            )
            rows.append(
                {
                    "dataset": name,
                    "priority": priority,
                    "L2_vertices": result.meshes[2].num_vertices,
                    "L2_nrmse": err.nrmse,
                    "L2_max_err": err.max_error,
                }
            )
    return rows


def test_priority_ablation_table(comparison, record_result):
    record_result(
        "ablation_priority",
        format_table(
            comparison,
            title="Ablation: edge priority = length (paper) vs data_aware",
        ),
    )


def test_same_ratio_reached(comparison):
    by_ds: dict = {}
    for row in comparison:
        by_ds.setdefault(row["dataset"], []).append(row["L2_vertices"])
    for counts in by_ds.values():
        assert counts[0] == counts[1]


def test_data_aware_not_catastrophically_worse(comparison):
    """Both priorities must keep the decimated level usable; data-aware
    should help (or at least not double the error) on feature-rich data."""
    by = {(r["dataset"], r["priority"]): r for r in comparison}
    for name in ("xgc1", "cfd"):
        ratio = (
            by[(name, "data_aware")]["L2_nrmse"]
            / max(by[(name, "length")]["L2_nrmse"], 1e-12)
        )
        assert ratio < 2.0


def test_priority_benchmark(benchmark):
    from repro.mesh import decimate

    ds = make_dataset("xgc1", scale=0.15)
    benchmark.pedantic(
        lambda: decimate(ds.mesh, ds.field, ratio=2, priority="data_aware"),
        rounds=3,
        iterations=1,
    )
