"""Shared fixtures and helpers for the per-figure benchmarks.

Every ``test_fig*.py`` module reproduces one table/figure of the paper's
evaluation: it prints the same rows/series the paper plots, asserts the
*shape* of the result (who wins, monotone trends, crossovers), and times
a representative kernel through pytest-benchmark.

Printed tables are also dumped under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Persist (and echo) one figure's textual output."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")

    return _record


@pytest.fixture(scope="session")
def workdir(tmp_path_factory) -> Path:
    return tmp_path_factory.mktemp("bench-storage")
