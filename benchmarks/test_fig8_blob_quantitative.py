"""Figure 8 — quantitative blob evaluation vs. decimation ratio.

Four panels over decimation ratios {None, 2, 4, 8, 16, 32} and the three
detector configurations <minThreshold, maxThreshold, minArea>:

  8a  number of blobs          8b  average blob diameter (px)
  8c  aggregate blob area      8d  overlap ratio vs. full accuracy

Shape assertions follow the paper's §IV-D reading: counts decay with
decimation, the aggressive-threshold Config2 decays fastest, diameters
do not collapse (averaging expands blobs before they vanish), and the
overlap ratio stays high — low-accuracy blobs still mark real
high-potential regions.
"""

import numpy as np
import pytest

from repro.analytics import (
    BlobDetectorParams,
    RasterSpec,
    blob_stats,
    detect_blobs,
    overlap_ratio,
    rasterize,
)
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_xgc1

RATIOS = [1, 2, 4, 8, 16, 32]  # 1 = the paper's "None"
CONFIGS = {
    "Config1": BlobDetectorParams(10, 200, min_area=100),
    "Config2": BlobDetectorParams(150, 200, min_area=100),
    "Config3": BlobDetectorParams(10, 200, min_area=200),
}


@pytest.fixture(scope="module")
def sweep():
    ds = make_xgc1(scale=1.0)
    result = refactor(ds.mesh, ds.field, LevelScheme(len(RATIOS)))
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))
    table: dict[str, dict[int, dict]] = {name: {} for name in CONFIGS}
    reference: dict[str, list] = {}
    for lvl, ratio in enumerate(RATIOS):
        img = rasterize(result.meshes[lvl], result.levels[lvl], spec)
        for name, params in CONFIGS.items():
            blobs = detect_blobs(img, params)
            if ratio == 1:
                reference[name] = blobs
            stats = blob_stats(blobs)
            table[name][ratio] = {
                "count": stats.count,
                "avg_diameter": stats.avg_diameter,
                "aggregate_area": stats.aggregate_area,
                "overlap": overlap_ratio(blobs, reference[name]),
            }
    return table


def _panel(table, metric):
    rows = []
    for ratio in RATIOS:
        row = {"ratio": "None" if ratio == 1 else ratio}
        for name in CONFIGS:
            row[name] = table[name][ratio][metric]
        rows.append(row)
    return rows


def test_fig8_tables(sweep, record_result):
    parts = []
    for panel, metric in [
        ("8a number of blobs", "count"),
        ("8b avg blob diameter (px)", "avg_diameter"),
        ("8c aggregate blob area (px^2)", "aggregate_area"),
        ("8d blob overlap ratio", "overlap"),
    ]:
        parts.append(format_table(_panel(sweep, metric), title=f"Fig.{panel}"))
    record_result("fig8_blob_quantitative", "\n\n".join(parts))


def test_fig8a_counts_decay_with_decimation(sweep):
    for name in CONFIGS:
        counts = [sweep[name][r]["count"] for r in RATIOS]
        assert counts[-1] < max(counts[0], 1) or counts[0] == 0
        # No config should *gain* blobs at extreme decimation.
        assert counts[-1] <= counts[0]


def test_fig8a_aggressive_threshold_decays_fastest(sweep):
    """Config2's high threshold is most sensitive to peak erosion."""
    c1 = [sweep["Config1"][r]["count"] for r in RATIOS]
    c2 = [sweep["Config2"][r]["count"] for r in RATIOS]
    assert c2[0] < c1[0]  # stricter config starts lower
    # Config2 loses everything by high decimation while Config1 survives.
    assert c2[-1] == 0
    assert c1[-1] >= 1


def test_fig8b_diameters_stay_comparable(sweep):
    """Averaging expands blobs before they vanish — diameters at moderate
    decimation stay within 2x of the full-accuracy diameter."""
    for name in ("Config1", "Config3"):
        d0 = sweep[name][1]["avg_diameter"]
        for ratio in (2, 4, 8):
            d = sweep[name][ratio]["avg_diameter"]
            if d > 0:
                assert 0.5 * d0 < d < 2.0 * d0


def test_fig8d_overlap_stays_high(sweep):
    """Blobs found in reduced data still point at true features."""
    for name in CONFIGS:
        for ratio in (2, 4, 8):
            assert sweep[name][ratio]["overlap"] >= 0.6


def test_fig8_sweep_benchmark(benchmark):
    ds = make_xgc1(scale=0.3)
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))

    def run():
        img = rasterize(ds.mesh, ds.field, spec)
        return detect_blobs(img, CONFIGS["Config1"])

    benchmark.pedantic(run, rounds=3, iterations=1)
