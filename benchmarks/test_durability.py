"""Durable elastic storage under replica loss (kill-a-mirror trace).

The durability argument for the replicated sharded backend, measured
end to end: encode an XGC1-scale campaign onto a two-tier hierarchy
whose leaves are mirrored twice, replay a progressive-restore trace,
then *kill one whole mirror mid-trace* and keep going.

Asserted:

* every restore after the kill is bit-identical to the healthy run —
  replica failover, not luck;
* the degraded trace's simulated I/O time is bounded (failover routes
  reads to the surviving mirror; it must not blow up the trace);
* ``repair`` (the ``repro fsck --repair`` machinery) restores full
  redundancy: afterwards every tier backend verifies clean and a fresh
  trace still restores bit-identically.

The structured result lands in ``benchmarks/results/
BENCH_durability.json`` and is gated by ``check_regression.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.harness import format_table, json_report
from repro.harness.report import write_json_report
from repro.io import BPDataset, repair_backends
from repro.simulations import make_xgc1
from repro.storage import kill_replica, two_tier_titan

from pipeline_common import RESULTS_DIR

SCALE = 0.5
LEVELS = 3
CHUNKS = 4
REL_TOL = 1e-4
SHARDS = 2
REPLICAS = 2
CHUNK_SIZE = 64 << 10
#: Generous failover budget: the degraded trace may not take more than
#: this multiple of the healthy trace (plus a small absolute floor for
#: timer noise on tiny sim totals).
MAX_SLOWDOWN = 8.0
SLOWDOWN_FLOOR_SECONDS = 2.0

TITAN_KW = dict(
    backend="sharded", shards=SHARDS, chunk_size=CHUNK_SIZE,
    replicas=REPLICAS, fast_capacity=48 << 20, slow_capacity=1 << 38,
)


def _restore_levels(hierarchy):
    """One progressive session: coarse-to-fine restores, fresh handles."""
    fields = {}
    for level in (LEVELS - 1, 1, 0):
        ds = BPDataset.open("camp", hierarchy, cache_bytes=0)
        fields[level] = CanopusDecoder(ds).restore_to(
            "dpot", level, pipeline=False
        ).field
    return fields


@pytest.fixture(scope="module")
def durability_run(tmp_path_factory):
    src = make_xgc1(scale=SCALE, seed=23)
    root = tmp_path_factory.mktemp("durability")
    hierarchy = two_tier_titan(root, **TITAN_KW)
    CanopusEncoder(
        hierarchy, codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
        chunks=CHUNKS,
    ).encode("camp", "dpot", src.mesh, src.field, LevelScheme(LEVELS))

    # --- healthy trace --------------------------------------------------
    h = two_tier_titan(root, **TITAN_KW)
    before = h.clock.elapsed
    healthy_fields = _restore_levels(h)
    healthy_seconds = h.clock.elapsed - before

    # --- kill one mirror mid-trace --------------------------------------
    h = two_tier_titan(root, **TITAN_KW)
    before = h.clock.elapsed
    ds = BPDataset.open("camp", h, cache_bytes=0)
    first = CanopusDecoder(ds).restore_to(
        "dpot", LEVELS - 1, pipeline=False
    ).field
    wiped = sum(
        kill_replica(t.backend, 0) for t in h.tiers
        if t.backend.list_objects()
    )
    degraded_fields = _restore_levels(h)
    degraded_fields[LEVELS - 1] = first
    degraded_seconds = h.clock.elapsed - before
    degraded_tiers = [t.name for t in h.tiers if t.degraded]

    # --- repair back to full redundancy ---------------------------------
    # The degraded trace's failover reads already read-repaired every
    # object they touched onto mirror 0; kill mirror 1 so the
    # anti-entropy sweep has damage that no read has healed.
    for t in h.tiers:
        if t.backend.list_objects():
            kill_replica(t.backend, 1)
    wall = time.perf_counter()
    repair_actions = repair_backends(h)
    repair_wall_seconds = time.perf_counter() - wall
    problems_after = {
        t.name: t.backend.verify() for t in h.tiers
    }
    repaired_fields = _restore_levels(h)

    return {
        "vertices": src.mesh.num_vertices,
        "healthy_fields": healthy_fields,
        "healthy_seconds": healthy_seconds,
        "wiped_objects": wiped,
        "degraded_fields": degraded_fields,
        "degraded_seconds": degraded_seconds,
        "degraded_tiers": degraded_tiers,
        "repair_actions": repair_actions,
        "repair_wall_seconds": repair_wall_seconds,
        "problems_after_repair": problems_after,
        "repaired_fields": repaired_fields,
    }


def test_replica_loss_is_survivable_and_bit_identical(durability_run):
    assert durability_run["wiped_objects"] > 0
    for level, ref in durability_run["healthy_fields"].items():
        np.testing.assert_array_equal(
            ref, durability_run["degraded_fields"][level],
            err_msg=f"degraded restore diverged at level {level}",
        )
    assert durability_run["degraded_tiers"], (
        "failover reads must flip the degraded flag"
    )


def test_degraded_slowdown_is_bounded(durability_run):
    healthy = durability_run["healthy_seconds"]
    degraded = durability_run["degraded_seconds"]
    bound = max(MAX_SLOWDOWN * healthy, healthy + SLOWDOWN_FLOOR_SECONDS)
    assert degraded <= bound, (
        f"degraded trace {degraded:.4f}s exceeds bound {bound:.4f}s "
        f"(healthy {healthy:.4f}s)"
    )


def test_repair_restores_redundancy(durability_run):
    assert durability_run["repair_actions"], (
        "repair after replica loss must act"
    )
    for tier, problems in durability_run["problems_after_repair"].items():
        assert problems == [], f"{tier} still damaged: {problems}"
    for level, ref in durability_run["healthy_fields"].items():
        np.testing.assert_array_equal(
            ref, durability_run["repaired_fields"][level],
        )


def test_report(durability_run, record_result):
    healthy = durability_run["healthy_seconds"]
    degraded = durability_run["degraded_seconds"]
    rows = [
        {
            "phase": "healthy trace (all mirrors up)",
            "sim_io_s": f"{healthy:.4f}",
        },
        {
            "phase": "mirror killed mid-trace (failover reads)",
            "sim_io_s": f"{degraded:.4f}",
        },
        {
            "phase": "post-repair trace (redundancy restored)",
            "sim_io_s": "-",
        },
    ]
    record_result(
        "durability_replica_loss",
        format_table(
            rows,
            title=(
                f"replica-loss trace, xgc1 scale {SCALE} "
                f"({durability_run['vertices']} vertices), "
                f"{SHARDS} shards x {REPLICAS} replicas — "
                f"degraded/healthy = {degraded / healthy:.2f}"
            ),
        ),
    )
    report = json_report(
        "durability_replica_loss",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "vertices": durability_run["vertices"],
            "levels": LEVELS,
            "shards": SHARDS,
            "replicas": REPLICAS,
            "chunk_size": CHUNK_SIZE,
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
            "wiped_objects": durability_run["wiped_objects"],
        },
        metrics={
            "healthy_trace_seconds": healthy,
            "degraded_trace_seconds": degraded,
            "degraded_over_healthy": degraded / healthy,
            "max_slowdown": MAX_SLOWDOWN,
            "repair_wall_seconds": durability_run["repair_wall_seconds"],
            "repair_actions": len(durability_run["repair_actions"]),
            "degraded_tiers": len(durability_run["degraded_tiers"]),
            "bit_identical": True,  # asserted separately
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_durability.json", report)
