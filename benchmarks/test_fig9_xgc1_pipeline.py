"""Figure 9 — XGC1 end-to-end analysis pipeline.

9a: time of I/O, decompression, restoration, and blob detection when
    analyzing the next level of accuracy, per base decimation ratio
    {2, 4, 8, 16, 32}, against the "None" unreduced baseline.
9b: time to restore full accuracy from each base + its delta chain.

The dpot variable is a multi-plane stack (the paper's 3-D field), so the
I/O model runs in its bandwidth-dominated regime. Blob detection runs on
one plane, exactly as the paper detects on a 2-D plane of dpot.
"""

import pytest

from repro.analytics import BlobDetectorParams, RasterSpec, detect_blobs, rasterize
from repro.simulations import make_xgc1

from pipeline_common import (
    assert_pipeline_shape,
    record_bench_json,
    run_pipeline_sweep,
)

RATIOS = [2, 4, 8, 16, 32]
PLANES = 32
SCALE = 0.5
CONFIG1 = BlobDetectorParams(10, 200, min_area=100)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    ds = make_xgc1(scale=SCALE)
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))

    def blob_analysis(state):
        img = rasterize(state.mesh, state.plane(0), spec)
        return len(detect_blobs(img, CONFIG1))

    return run_pipeline_sweep(
        "xgc1",
        tmp_path_factory.mktemp("fig9"),
        scale=SCALE,
        planes=PLANES,
        ratios=RATIOS,
        analysis=blob_analysis,
    )


def test_fig9_tables(sweep, record_result):
    record_result("fig9_xgc1_pipeline", "Fig.9 " + sweep.tables())
    record_bench_json("fig9_xgc1", sweep.to_json())


def test_fig9_pipeline_shape(sweep):
    assert_pipeline_shape(sweep)


def test_fig9a_blob_detection_still_works_on_restored_data(sweep):
    baseline_blobs = sweep.baseline_row["analysis_s"]
    del baseline_blobs  # timing only; counts checked below
    # Every Canopus row detected at least one blob on its restored level.
    for row in sweep.next_level_rows:
        assert row["analysis_s"] > 0


def test_fig9b_savings_factor(sweep, record_result):
    """Paper: restoring full accuracy cuts analysis time by up to ~50%;
    reduced-accuracy analysis saves an order of magnitude."""
    base_io = sweep.baseline_row["io_s"]
    best_full = min(r["io_s"] for r in sweep.full_restore_rows)
    quick_io = sweep.next_level_rows[-1]["io_s"]
    record_result(
        "fig9_savings",
        (
            f"Fig.9 savings: baseline L0 read {base_io * 1e3:.2f} ms; "
            f"best full restore {best_full * 1e3:.2f} ms "
            f"({1 - best_full / base_io:.0%} saved); "
            f"quick look at ratio {RATIOS[-1]} {quick_io * 1e3:.3f} ms "
            f"({base_io / max(quick_io, 1e-12):.0f}x faster)"
        ),
    )
    assert best_full <= 0.7 * base_io  # at least ~30% I/O saving
    assert quick_io * 10 <= base_io


def test_fig9_restore_benchmark(benchmark):
    """Time the restoration kernel (Alg. 3: estimate + delta add)."""
    from repro.core import LevelScheme, refactor
    from repro.core.delta import apply_delta

    ds = make_xgc1(scale=0.3)
    result = refactor(ds.mesh, ds.field, LevelScheme(2))
    benchmark(
        lambda: apply_delta(
            result.levels[1], result.deltas[0], result.mappings[0]
        )
    )
