"""Figure 7 — macroscopic view of blob detection at levels L0..L5.

The paper shows the detected blobs (circled) on XGC1 dpot at six
accuracy levels, observing that "most blobs in the full accuracy data
can still be detected using a moderately reduced accuracy" while counts
decay as information is lost. This bench prints the per-level blob
inventory (count, centers, diameters) and asserts those qualitative
facts.
"""

import pytest

from repro.analytics import (
    BlobDetectorParams,
    RasterSpec,
    blob_stats,
    detect_blobs,
    overlap_ratio,
    rasterize,
)
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_xgc1

N_LEVELS = 6  # L0 .. L5, decimation ratios 1 .. 32
CONFIG1 = BlobDetectorParams(min_threshold=10, max_threshold=200, min_area=100)


@pytest.fixture(scope="module")
def levels():
    ds = make_xgc1(scale=1.0)
    result = refactor(ds.mesh, ds.field, LevelScheme(N_LEVELS))
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))
    detections = []
    for lvl in range(N_LEVELS):
        img = rasterize(result.meshes[lvl], result.levels[lvl], spec)
        detections.append(detect_blobs(img, CONFIG1))
    return ds, result, detections


def test_fig7_blob_inventory(levels, record_result):
    ds, result, detections = levels
    rows = []
    for lvl, blobs in enumerate(detections):
        s = blob_stats(blobs)
        rows.append(
            {
                "level": f"L{lvl}",
                "ratio": 2**lvl,
                "vertices": result.meshes[lvl].num_vertices,
                "blobs": s.count,
                "avg_diameter_px": s.avg_diameter,
                "overlap_vs_L0": overlap_ratio(blobs, detections[0]),
            }
        )
    record_result(
        "fig7_blob_macroscopic",
        format_table(rows, title="Fig.7: blob detection at L0..L5 (Config1)"),
    )

    counts = [len(b) for b in detections]
    # Information loss erodes detections overall (L5 clearly below L0)...
    assert counts[-1] < counts[0]
    # ...but a moderately reduced accuracy (<= 4x) keeps most blobs.
    assert counts[2] >= 0.6 * counts[0]


def test_fig7_blobs_sit_near_plasma_edge(levels):
    """Detected blobs localize where the physics puts them.

    Every high-confidence blob (seen at many thresholds) must sit near
    the outer (plasma-edge) radius where the generator seeds them; a few
    low-repeatability detections may come from background turbulence.
    """
    ds, _, detections = levels
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))
    lo, hi = spec.bounds
    radii = []
    for blob in detections[0]:
        x = lo[0] + blob.center[0] / 256 * (hi[0] - lo[0])
        y = lo[1] + blob.center[1] / 256 * (hi[1] - lo[1])
        r = (x**2 + y**2) ** 0.5
        radii.append((r, blob.repeatability))
        if blob.repeatability >= 5:
            assert 0.6 < r < 1.05, (r, blob.repeatability)
    near_edge = sum(1 for r, _ in radii if 0.6 < r < 1.05)
    assert near_edge >= 0.6 * len(radii)

def test_fig7_low_accuracy_blobs_overlap_full(levels):
    _, _, detections = levels
    for lvl in range(1, 4):
        assert overlap_ratio(detections[lvl], detections[0]) >= 0.7


def test_fig7_detection_benchmark(benchmark, levels):
    ds, result, _ = levels
    spec = RasterSpec.from_reference(ds.mesh, ds.field, (256, 256))
    img = rasterize(ds.mesh, ds.field, spec)
    benchmark(lambda: detect_blobs(img, CONFIG1))
