"""Shared driver for the end-to-end pipeline figures (9, 10, 11).

For each decimation ratio r in the figure's sweep the paper encodes the
variable with the base at ratio r, then measures two retrieval modes:

* (a) "analysis at the next level": read the base + the first delta,
  restore one level, run the analysis (Figs. 9a/10a/11a);
* (b) "full-accuracy restoration": read the base + every delta and
  restore L0 (Figs. 9b/10b/11b);

plus the "None" baseline — the unreduced L0 read straight from the
parallel file system.

Because our decompression runs in Python while the I/O times come from
Titan-like device models, the *phase mix* differs from the paper (their
ZFP decodes orders of magnitude faster relative to I/O); the I/O series
— which is what the storage hierarchy argument is about — is asserted,
and every phase is reported.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analytics import (
    baseline_full_read,
    restore_full_accuracy,
    run_analysis_at_level,
)
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.harness import format_table, json_report
from repro.harness.experiment import stack_planes, write_baseline_dataset
from repro.io import BPDataset
from repro.simulations import make_dataset
from repro.storage import two_tier_titan

REL_TOL = 1e-4

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_pipeline.json"


def record_bench_json(key: str, payload: dict) -> Path:
    """Merge one benchmark's structured result into BENCH_pipeline.json.

    The file accumulates ``{key: payload}`` across the whole benchmark
    run (fig9/10/11 sweeps + engine speedup), so one JSON document holds
    the machine-readable record the ``results/*.txt`` tables mirror.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    merged: dict = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged[key] = payload
    BENCH_JSON.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return BENCH_JSON


@dataclass
class PipelineSweep:
    dataset_name: str
    variable: str
    ratios: list[int]
    next_level_rows: list[dict]
    full_restore_rows: list[dict]
    baseline_row: dict
    max_restore_error: float
    field_range: float

    def tables(self) -> str:
        a = format_table(
            [self.baseline_row] + self.next_level_rows,
            title=(
                f"({self.dataset_name}/{self.variable}) end-to-end analysis "
                "pipeline, by base decimation ratio"
            ),
        )
        b = format_table(
            self.full_restore_rows,
            title="full-accuracy restoration from base + deltas",
        )
        return a + "\n\n" + b

    def to_json(self) -> dict:
        """Structured counterpart of :meth:`tables` (same numbers)."""
        return json_report(
            f"pipeline:{self.dataset_name}",
            self.next_level_rows,
            meta={
                "dataset": self.dataset_name,
                "variable": self.variable,
                "ratios": self.ratios,
                "rel_tolerance": REL_TOL,
            },
            metrics={
                "baseline": self.baseline_row,
                "full_restore_rows": self.full_restore_rows,
                "max_restore_error": self.max_restore_error,
                "field_range": self.field_range,
            },
        )


def run_pipeline_sweep(
    dataset_name: str,
    workdir: Path,
    *,
    scale: float,
    planes: int,
    ratios: list[int],
    analysis=None,
    chunks: int = 1,
) -> PipelineSweep:
    dataset = make_dataset(dataset_name, scale=scale)
    field = stack_planes(dataset, planes)
    hierarchy = two_tier_titan(
        workdir, fast_capacity=256 << 20, slow_capacity=1 << 38
    )
    encoder = CanopusEncoder(
        hierarchy,
        codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
        chunks=chunks,
    )

    # One encoding per base ratio (the paper's per-ratio test cases).
    for ratio in ratios:
        levels = int(math.log2(ratio)) + 1
        encoder.encode(
            f"{dataset_name}-r{ratio}",
            dataset.variable,
            dataset.mesh,
            field,
            LevelScheme(levels),
        )
    write_baseline_dataset(
        f"{dataset_name}-none", hierarchy, dataset, field=field
    )

    def phase_row(label, ratio, res):
        return {
            "ratio": label,
            "io_s": res.io_seconds,
            "decompress_s": res.decompress_seconds,
            "restore_s": res.restore_seconds,
            "analysis_s": res.analysis_seconds,
            "total_s": res.total_seconds,
        }

    baseline = baseline_full_read(
        hierarchy, f"{dataset_name}-none", dataset.variable, analysis=analysis
    )
    baseline_row = phase_row("None", 1, baseline)

    next_rows = []
    full_rows = []
    max_err = 0.0
    for ratio in ratios:
        name = f"{dataset_name}-r{ratio}"
        dec = CanopusDecoder(BPDataset.open(name, hierarchy))
        scheme = dec.scheme(dataset.variable)
        # (a) construct the next level of accuracy and analyze it.
        res_a = run_analysis_at_level(
            dec, dataset.variable, max(0, scheme.base_level - 1),
            analysis=analysis,
        )
        next_rows.append(phase_row(ratio, ratio, res_a))
        # (b) restore full accuracy (fresh decoder = cold caches, but
        # geometry is prefetched inside the pipeline as one-time setup).
        dec_b = CanopusDecoder(BPDataset.open(name, hierarchy))
        res_b = restore_full_accuracy(dec_b, dataset.variable)
        full_rows.append(phase_row(ratio, ratio, res_b))
        restored = dec_b.restore_to(dataset.variable, 0)
        max_err = max(
            max_err, float(np.max(np.abs(restored.field - field)))
        )

    return PipelineSweep(
        dataset_name=dataset_name,
        variable=dataset.variable,
        ratios=ratios,
        next_level_rows=next_rows,
        full_restore_rows=full_rows,
        baseline_row=baseline_row,
        max_restore_error=max_err,
        field_range=float(np.ptp(field)),
    )


def assert_pipeline_shape(sweep: PipelineSweep) -> None:
    """The paper's qualitative claims, shared by Figs. 9–11."""
    io_a = [r["io_s"] for r in sweep.next_level_rows]
    # (1) Reading less data costs less I/O: monotone decrease with ratio.
    assert all(a > b for a, b in zip(io_a, io_a[1:])), io_a
    # (2) Elastic analytics: at the deepest decimation in the figure's
    # sweep, the quick-look I/O sits far below the unreduced read — an
    # order of magnitude when the sweep reaches ratio 32 (the paper's
    # XGC1 claim), proportionally less for shallow sweeps (CFD stops at
    # ratio 8).
    factor = min(10.0, 0.8 * max(sweep.ratios))
    assert io_a[-1] * factor <= sweep.baseline_row["io_s"]
    # (3) Full-accuracy restoration beats the raw full read on I/O at
    # every ratio (compression + fast-tier base).
    for row in sweep.full_restore_rows:
        assert row["io_s"] < sweep.baseline_row["io_s"]
    # (4) Restoration is correct: error within the accumulated per-stage
    # bounds (N−1 deltas + base, each ≤ REL_TOL × range).
    max_levels = int(math.log2(max(sweep.ratios))) + 1
    assert (
        sweep.max_restore_error
        <= max_levels * REL_TOL * sweep.field_range + 1e-12
    )
