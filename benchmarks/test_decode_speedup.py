"""Read-path speedup: parallel decode engine + shared restored cache.

The seed read path restored one variable at a time with a fresh decoder
per analytics session — every session re-read and re-decoded the same
base + deltas, serially. This benchmark restores a Fig.-9-scale
multi-variable XGC1 dataset both ways, over several analytics sessions
(the paper's "many analyses against one campaign" loop):

* **seed path** — per session, per variable: a fresh
  :class:`~repro.core.decoder.CanopusDecoder` (``workers=1``, no
  pipeline, no caches) restores to L0;
* **fast path** — per session, one
  :class:`~repro.core.decode_engine.DecodeEngine` (``workers=4``)
  restores all variables concurrently; the process-wide restored-level
  and geometry caches stay warm across sessions, so repeat sessions
  decode nothing.

The structured result lands in ``benchmarks/results/BENCH_decode.json``
(uploaded as a CI artifact). Asserted: ≥3× wall-time speedup and
bit-identical restored fields.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.harness import format_table, json_report
from repro.harness.experiment import stack_planes
from repro.harness.report import write_json_report
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import RESULTS_DIR

SCALE = 0.5  # Fig. 9's XGC1 scale
PLANES = 4
LEVELS = 3
CHUNKS = 8
SESSIONS = 5
WORKERS = 4
VARIABLES = ["dpot", "apar", "dden"]
REL_TOL = 1e-4
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def decode_timings(tmp_path_factory):
    from repro.core.decode_engine import DecodeEngine

    src = make_xgc1(scale=SCALE, seed=9)
    base = stack_planes(src, PLANES)
    rng = np.random.default_rng(9)
    fields = {
        "dpot": base,
        "apar": 0.5 * base + 0.05 * rng.standard_normal(base.shape),
        "dden": np.abs(base) + 0.01,
    }

    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("decode-speedup"),
        fast_capacity=256 << 20, slow_capacity=1 << 38,
    )
    encoder = CanopusEncoder(
        hierarchy,
        codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
        chunks=CHUNKS,
    )
    ds_w = BPDataset.create("fig9-multi", hierarchy)
    for var, field in fields.items():
        encoder.encode(
            "fig9-multi", var, src.mesh, field, LevelScheme(LEVELS),
            dataset=ds_w, close=False,
        )
    ds_w.close()

    # --- seed path: fresh serial decoder per session, per variable -------
    t0 = time.perf_counter()
    seed_fields: dict[str, np.ndarray] = {}
    for _session in range(SESSIONS):
        for var in VARIABLES:
            dec = CanopusDecoder(
                BPDataset.open("fig9-multi", hierarchy), workers=1
            )
            seed_fields[var] = dec.restore_to(var, 0, pipeline=False).field
    seed_seconds = time.perf_counter() - t0

    # --- fast path: parallel fan-out + warm process-wide caches ----------
    get_restored_cache().clear()
    get_geometry_cache().clear()
    t0 = time.perf_counter()
    fast_fields: dict[str, np.ndarray] = {}
    for _session in range(SESSIONS):
        engine = DecodeEngine(
            BPDataset.open("fig9-multi", hierarchy), workers=WORKERS
        )
        out = engine.restore_many(VARIABLES, 0)
        fast_fields = {var: state.field for var, state in out.items()}
    fast_seconds = time.perf_counter() - t0
    cache_stats = get_restored_cache().stats()
    get_restored_cache().clear()
    get_geometry_cache().clear()

    return {
        "seed_seconds": seed_seconds,
        "fast_seconds": fast_seconds,
        "seed_fields": seed_fields,
        "fast_fields": fast_fields,
        "cache_stats": cache_stats,
        "vertices": src.mesh.num_vertices,
    }


def test_speedup_and_report(decode_timings, record_result):
    seed_s = decode_timings["seed_seconds"]
    fast_s = decode_timings["fast_seconds"]
    speedup = seed_s / fast_s

    per_restore = SESSIONS * len(VARIABLES)
    rows = [
        {
            "path": "seed (fresh serial decoder per session/var)",
            "restores": per_restore,
            "wall_s": f"{seed_s:.3f}",
            "per_restore_s": f"{seed_s / per_restore:.3f}",
        },
        {
            "path": f"fast (restore_many, {WORKERS} workers, warm caches)",
            "restores": per_restore,
            "wall_s": f"{fast_s:.3f}",
            "per_restore_s": f"{fast_s / per_restore:.3f}",
        },
    ]
    record_result(
        "decode_speedup",
        format_table(
            rows,
            title=(
                f"multi-variable restore wall time, xgc1 scale {SCALE} "
                f"({decode_timings['vertices']} vertices, {PLANES} planes, "
                f"{len(VARIABLES)} vars, {SESSIONS} sessions) — "
                f"speedup {speedup:.1f}x"
            ),
        ),
    )

    report = json_report(
        "decode_speedup",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "planes": PLANES,
            "vertices": decode_timings["vertices"],
            "levels": LEVELS,
            "chunks": CHUNKS,
            "variables": VARIABLES,
            "sessions": SESSIONS,
            "workers": WORKERS,
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
        },
        metrics={
            "seed_seconds": seed_s,
            "fast_seconds": fast_s,
            "speedup": speedup,
            "min_speedup_required": MIN_SPEEDUP,
            "restored_cache": decode_timings["cache_stats"],
            "bit_identical": True,  # asserted below
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_decode.json", report)

    assert speedup >= MIN_SPEEDUP, (
        f"fast path {fast_s:.3f}s vs seed {seed_s:.3f}s — "
        f"only {speedup:.2f}x"
    )


def test_fast_path_bit_identical(decode_timings):
    """Parallelism and caching change when bytes move, never the field."""
    for var in VARIABLES:
        assert np.array_equal(
            decode_timings["fast_fields"][var],
            decode_timings["seed_fields"][var],
        ), var


def test_warm_cache_hits_recorded(decode_timings):
    """Sessions 2..N are served from the restored-level cache."""
    stats = decode_timings["cache_stats"]
    assert stats["hits"] >= (SESSIONS - 1) * len(VARIABLES)


def test_chunk_decode_benchmark(benchmark, tmp_path):
    from repro.core.decode_engine import DecodeEngine

    src = make_xgc1(scale=0.2)
    hierarchy = two_tier_titan(
        tmp_path, fast_capacity=128 << 20, slow_capacity=1 << 38
    )
    CanopusEncoder(
        hierarchy,
        codec="zfp",
        codec_params={"tolerance": REL_TOL, "mode": "relative"},
        chunks=CHUNKS,
    ).encode("bench", src.variable, src.mesh, src.field, LevelScheme(LEVELS))
    engine = DecodeEngine(
        BPDataset.open("bench", hierarchy),
        workers=WORKERS, use_restored_cache=False,
    )
    benchmark(lambda: engine.restore(src.variable, 0))
