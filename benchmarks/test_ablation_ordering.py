"""Ablation — vertex storage order vs. 1-D codec effectiveness.

The codecs decorrelate values that are adjacent in storage order, so a
connectivity- or geometry-aware vertex ordering acts as another free
pre-conditioner on top of the delta refactoring. This bench compares
the generator's native order against BFS/RCM/Morton orderings on the
same fields.
"""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.harness import format_table
from repro.mesh.ordering import inverse_permutation, vertex_ordering
from repro.simulations import make_dataset

ORDERINGS = ["identity", "bfs", "rcm", "spatial"]
REL_TOL = 1e-4


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for name in ("xgc1", "genasis"):
        ds = make_dataset(name, scale=0.3)
        tol = REL_TOL * float(np.ptp(ds.field))
        # A scrambled baseline shows the worst case: no locality at all.
        rng = np.random.default_rng(0)
        scramble = rng.permutation(ds.mesh.num_vertices)
        for codec_name in ("zfp", "sz"):
            codec = get_codec(codec_name, tolerance=tol)
            sizes = {"scrambled": len(codec.encode(ds.field[scramble]))}
            for method in ORDERINGS:
                perm = vertex_ordering(ds.mesh, method)
                sizes[method] = len(codec.encode(ds.field[perm]))
            rows.append({"dataset": name, "codec": codec_name, **sizes})
    return rows


def test_ordering_table(comparison, record_result):
    record_result(
        "ablation_ordering",
        format_table(
            comparison,
            title="Compressed bytes by vertex storage order",
        ),
    )


def test_locality_beats_scrambled(comparison):
    """Any coherent order beats a random shuffle decisively."""
    for row in comparison:
        for method in ORDERINGS:
            assert row[method] < row["scrambled"]


def test_reordering_recovers_lost_locality(comparison):
    """The realistic use: data arriving in arbitrary order (e.g. after a
    partitioned gather) gets its locality *recovered* by reordering.

    The generators' native orders (ring-major annulus, sunflower spiral)
    are already highly coherent, so connectivity orders mostly tie or
    slightly lose against them — the win is against incoherent input:
    the best coherent order cuts ≥ 10 % versus the scramble."""
    for row in comparison:
        best = min(row[m] for m in ORDERINGS)
        assert best <= 0.9 * row["scrambled"]
        # And no coherent ordering is catastrophically bad.
        for method in ("rcm", "spatial", "bfs"):
            assert row[method] < row["identity"] * 1.5


def test_permutation_roundtrip(comparison):
    ds = make_dataset("xgc1", scale=0.1)
    perm = vertex_ordering(ds.mesh, "rcm")
    inv = inverse_permutation(perm)
    assert np.array_equal(ds.field[perm][inv], ds.field)


def test_ordering_benchmark(benchmark):
    ds = make_dataset("xgc1", scale=0.3)
    benchmark(lambda: vertex_ordering(ds.mesh, "rcm"))
