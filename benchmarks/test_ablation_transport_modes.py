"""Ablation — deployment modes: post-processing vs in situ vs in transit.

Paper §III-A: Canopus can run "in situ (using either the same core or a
different core than the simulation process)" or "in transit (stages the
data in-memory to auxiliary nodes)", switchable at runtime. This bench
measures a real encode of XGC1 dpot, projects it onto the four modes
under the paper's medium storage-to-compute scenario, and checks the
relationships a practitioner would base the choice on.
"""

import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.harness import format_table
from repro.perfmodel import model_modes
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan


#: Per-core production step volume (XGC1-class) and C-like kernel
#: throughputs used to project the measured *compression ratio* onto the
#: paper's regime. Our Python kernels are ~100-1000x slower than the C
#: stack the paper ran, so using their wall times would make refactoring
#: look absurdly expensive; the throughputs below are representative of
#: the C implementations (mesh decimation, delta kernels, ZFP).
STEP_VOLUME = 256 << 20
DECIMATE_BPS = 150e6
DELTA_BPS = 300e6
COMPRESS_BPS = 400e6


@pytest.fixture(scope="module")
def modes(tmp_path_factory):
    ds = make_xgc1(scale=0.5)
    h = two_tier_titan(
        tmp_path_factory.mktemp("modes"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    encoder = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"}
    )
    report, _ = encoder.encode("modes", "dpot", ds.mesh, ds.field, LevelScheme(3))
    # Keep the measured reduction; rescale volume and kernel speeds.
    # Payload bytes only: mesh/mapping geometry is static across steps
    # and written once, so it does not belong in the per-step volume.
    measured_ratio = report.original_bytes / report.payload_bytes
    from repro.core.encoder import EncodeReport

    scaled = EncodeReport(
        var="dpot", scheme=report.scheme, original_bytes=STEP_VOLUME
    )
    scaled.decimation_seconds = STEP_VOLUME / DECIMATE_BPS
    scaled.delta_seconds = STEP_VOLUME / DELTA_BPS
    scaled.compress_seconds = STEP_VOLUME / COMPRESS_BPS
    scaled.compressed_bytes = {"all": int(STEP_VOLUME / measured_ratio)}
    # Output interval: XGC1 writes a snapshot every O(minute) of compute.
    return {
        "congested": model_modes(
            scaled, simulation_seconds=60.0, storage_bandwidth=5e6
        ),
        "healthy": model_modes(
            scaled, simulation_seconds=60.0, storage_bandwidth=250e6
        ),
    }


def test_mode_tables(modes, record_result):
    parts = []
    for scenario, table in modes.items():
        rows = [
            {
                "mode": m.mode,
                "sim_s": m.simulation_seconds,
                "blocking_s": m.blocking_seconds,
                "offloaded_s": m.offloaded_seconds,
                "step_s": m.step_seconds,
                "overhead": m.overhead_fraction,
            }
            for m in table.values()
        ]
        parts.append(
            format_table(rows, title=f"Deployment modes ({scenario} PFS)")
        )
    record_result("ablation_transport_modes", "\n\n".join(parts))


def test_in_transit_always_blocks_least(modes):
    for table in modes.values():
        blocking = {m.mode: m.blocking_seconds for m in table.values()}
        assert blocking["in_transit"] == min(blocking.values())


def test_canopus_wins_on_congested_storage(modes):
    """Where the paper lives: I/O-bound writes ⇒ writing 4x less wins."""
    table = modes["congested"]
    assert table["inline"].step_seconds < table["baseline"].step_seconds
    assert table["helper_core"].step_seconds < table["baseline"].step_seconds


def test_refactoring_not_free_on_healthy_storage(modes):
    """With fast storage the inline refactor cost shows up — the paper's
    'complex data refactorization incurs overhead to simulations'."""
    table = modes["healthy"]
    assert table["inline"].blocking_seconds > table["baseline"].blocking_seconds


def test_modes_benchmark(benchmark, modes):
    table = modes["congested"]
    benchmark(lambda: {m.mode: m.step_seconds for m in table.values()})
