"""Extension bench — query-driven and focused (ROI) retrieval.

Paper §III-E: "the initial analysis on the low accuracy data can provide
guidance to subsequent, higher fidelity data explorations, and
facilitate focused data retrieval, e.g., reading smaller subsets of high
accuracy data". This bench quantifies both mechanisms on XGC1:

* ROI refinement: refine only the delta chunks whose bounding box
  intersects the neighborhood of the strongest base-level feature;
* statistics pruning: skip delta chunks whose recorded |max| cannot
  change any value by more than a significance threshold.
"""

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.harness import format_table
from repro.io import BPDataset, QueryEngine
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

CHUNKS = 36


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    ds = make_xgc1(scale=0.5)
    h = two_tier_titan(
        tmp_path_factory.mktemp("query"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"},
        chunks=CHUNKS,
    )
    enc.encode("q", "dpot", ds.mesh, ds.field, LevelScheme(3))
    return ds, h


def _fresh_decoder(h):
    dec = CanopusDecoder(BPDataset.open("q", h))
    dec.prefetch_geometry("dpot")
    return dec


def test_focused_retrieval_table(setup, record_result):
    ds, h = setup
    rows = []

    dec = _fresh_decoder(h)
    base = dec.read_base("dpot")
    before = h.clock.bytes_moved(op="read")
    full = dec.refine(base)
    full_bytes = h.clock.bytes_moved(op="read") - before
    rows.append({"retrieval": "full refinement", "delta_bytes": full_bytes,
                 "vertices_refined": int(full.refined_mask.sum())})

    for half in (0.4, 0.2, 0.1):
        dec = _fresh_decoder(h)
        base = dec.read_base("dpot")
        center = base.mesh.vertices[int(np.argmax(base.field))]
        before = h.clock.bytes_moved(op="read")
        roi = dec.refine(base, region=(center - half, center + half))
        nbytes = h.clock.bytes_moved(op="read") - before
        rows.append(
            {
                "retrieval": f"ROI half-width {half}",
                "delta_bytes": nbytes,
                "vertices_refined": int(roi.refined_mask.sum()),
            }
        )
    record_result(
        "query_focused_retrieval",
        format_table(rows, title="Focused retrieval: delta bytes read"),
    )
    # Smaller windows read less.
    sizes = [r["delta_bytes"] for r in rows]
    assert sizes[0] > sizes[1] > sizes[2] > sizes[3]


def test_roi_region_is_exact(setup):
    ds, h = setup
    dec_roi = _fresh_decoder(h)
    base = dec_roi.read_base("dpot")
    center = base.mesh.vertices[int(np.argmax(base.field))]
    roi = dec_roi.refine(base, region=(center - 0.2, center + 0.2))

    dec_full = _fresh_decoder(h)
    full = dec_full.refine(dec_full.read_base("dpot"))
    mask = roi.refined_mask
    assert mask.any()
    assert np.allclose(roi.field[mask], full.field[mask])


def test_query_benchmark(benchmark, setup):
    _, h = setup
    q = QueryEngine(BPDataset.open("q", h))
    benchmark(lambda: q.candidates_significant(1e-2, kind="delta"))
