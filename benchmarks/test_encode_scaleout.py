"""Multiprocess streaming encode scale-out vs the PR 3 thread path.

The thread-parallel campaign writer (plan replay + thread-pooled
delta/compress) is GIL-bound: replay's gather/scatter and zfp's Python
glue serialize, capping one process well below the hardware. This
benchmark encodes the same Fig.-4-scale XGC1 campaign both ways:

* **thread path** — :class:`~repro.core.campaign.CampaignWriter` with
  the batched kernel and a 4-thread delta/compress pool (PR 3's fast
  path);
* **scale-out path** — :func:`~repro.core.encode_scheduler
  .encode_campaign_scaleout`: 4 worker processes, fields shipped
  through windowed shared-memory slots, fused decimate→delta→compress
  per task, plans replayed worker-side (never pickled).

The structured result lands in
``benchmarks/results/BENCH_encode_scaleout.json`` (uploaded as a CI
artifact) with throughput, peak RSS, and shared-memory high-water
gauges. Asserted always: bit-identical products and window-bounded
shared memory. Asserted on hosts with >= 4 cores (the CI runner; this
is a wall-clock claim a time-shared single core cannot express):
>= 2.5x over the thread path — override the floor with
``REPRO_SCALEOUT_MIN``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import CampaignReader, CampaignWriter, LevelScheme
from repro.core.encode_scheduler import encode_campaign_scaleout
from repro.harness import format_table, json_report
from repro.harness.report import write_json_report
from repro.io import BPDataset
from repro.obs.metrics import get_registry
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import RESULTS_DIR

SCALE = 0.4
LEVELS = 3
STEPS = 8
PROCESSES = 4
WINDOW = 4
THREAD_WORKERS = 4
REL_TOL = 1e-4
MIN_SPEEDUP = float(os.environ.get("REPRO_SCALEOUT_MIN", "2.5"))
ENOUGH_CORES = (os.cpu_count() or 1) >= 4


def _timestep_fields(ds, steps: int) -> list[np.ndarray]:
    x, y = ds.mesh.vertices[:, 0], ds.mesh.vertices[:, 1]
    return [
        ds.field * (1.0 + 0.05 * t) + 0.1 * np.sin(3 * x + 0.4 * t) * y
        for t in range(steps)
    ]


@pytest.fixture(scope="module")
def scaleout_timings(tmp_path_factory):
    ds = make_xgc1(scale=SCALE, seed=7)
    scheme = LevelScheme(LEVELS)
    fields = _timestep_fields(ds, STEPS)
    codec_params = {"tolerance": REL_TOL, "mode": "relative"}

    def hier(tag):
        return two_tier_titan(
            tmp_path_factory.mktemp("encode-scaleout") / tag,
            fast_capacity=256 << 20, slow_capacity=1 << 38,
        )

    # --- PR 3 thread path: plan replay + thread-pooled delta/compress ---
    h_thread = hier("thread")
    t0 = time.perf_counter()
    writer = CampaignWriter(
        h_thread, "scaleout", "dpot", ds.mesh, scheme,
        codec="zfp", codec_params=codec_params,
        method="batched", workers=THREAD_WORKERS,
    )
    for step, data in enumerate(fields):
        writer.write_step(step, data)
    writer.close()
    thread_seconds = time.perf_counter() - t0

    # --- process scale-out: shared-memory scheduler, fused kernels ------
    h_mp = hier("mp")
    t0 = time.perf_counter()
    report, _ = encode_campaign_scaleout(
        h_mp, "scaleout", "dpot", ds.mesh, scheme,
        ((step, data) for step, data in enumerate(fields)),
        processes=PROCESSES, window=WINDOW, start_method="fork",
        codec="zfp", codec_params=codec_params, method="batched",
    )
    mp_seconds = time.perf_counter() - t0

    return {
        "ds": ds,
        "fields": fields,
        "h_thread": h_thread,
        "h_mp": h_mp,
        "thread_seconds": thread_seconds,
        "mp_seconds": mp_seconds,
        "report": report,
    }


def test_throughput_and_report(scaleout_timings, record_result):
    ds = scaleout_timings["ds"]
    report = scaleout_timings["report"]
    thread_s = scaleout_timings["thread_seconds"]
    mp_s = scaleout_timings["mp_seconds"]
    speedup = thread_s / mp_s
    total_vertices = STEPS * ds.mesh.num_vertices

    rows = [
        {
            "path": f"thread (batched plan, {THREAD_WORKERS} threads)",
            "steps": STEPS,
            "wall_s": f"{thread_s:.3f}",
            "vertices_per_s": f"{total_vertices / thread_s:,.0f}",
        },
        {
            "path": (
                f"scale-out ({PROCESSES} procs, window {WINDOW}, "
                "fused shm)"
            ),
            "steps": STEPS,
            "wall_s": f"{mp_s:.3f}",
            "vertices_per_s": f"{total_vertices / mp_s:,.0f}",
        },
    ]
    record_result(
        "encode_scaleout",
        format_table(
            rows,
            title=(
                f"campaign encode scale-out, xgc1 scale {SCALE} "
                f"({ds.mesh.num_vertices} vertices x {STEPS} steps) — "
                f"{speedup:.2f}x on {os.cpu_count()} cores"
            ),
        ),
    )

    registry = get_registry()
    bench = json_report(
        "encode_scaleout",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "vertices": ds.mesh.num_vertices,
            "levels": LEVELS,
            "steps": STEPS,
            "processes": PROCESSES,
            "window": WINDOW,
            "thread_workers": THREAD_WORKERS,
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
            "cpu_count": os.cpu_count(),
            "start_method": report.start_method,
        },
        metrics={
            "thread_seconds": thread_s,
            "mp_seconds": mp_s,
            "speedup": speedup,
            "min_speedup_required": MIN_SPEEDUP,
            "speedup_asserted": ENOUGH_CORES,
            "thread_vertices_per_second": total_vertices / thread_s,
            "mp_vertices_per_second": total_vertices / mp_s,
            # gauges exported by the scheduler, stamped into the record
            "peak_rss_bytes": registry.gauge(
                "encode.sched.peak_rss_bytes"
            ).value,
            "shm_hwm_bytes": registry.gauge(
                "encode.sched.shm_hwm_bytes"
            ).value,
            "shm_bytes": report.shm_bytes,
            "window_stalls": report.window_stalls,
            "plan_builds": report.plan_builds,
            "plan_replays": report.plan_replays,
            "bit_identical": True,  # asserted below
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_encode_scaleout.json", bench)

    if ENOUGH_CORES:
        assert speedup >= MIN_SPEEDUP, (
            f"scale-out {mp_s:.3f}s vs thread path {thread_s:.3f}s — "
            f"only {speedup:.2f}x on {os.cpu_count()} cores"
        )


def test_products_bit_identical(scaleout_timings):
    """Every product byte-equal between the thread and scale-out paths."""
    d_thread = BPDataset.open("scaleout", scaleout_timings["h_thread"])
    d_mp = BPDataset.open("scaleout", scaleout_timings["h_mp"])
    assert set(d_thread.keys()) == set(d_mp.keys())
    for key in sorted(d_thread.keys()):
        assert d_thread.read(key) == d_mp.read(key), key
    assert (
        d_thread.catalog.attrs["campaign"] == d_mp.catalog.attrs["campaign"]
    )


def test_window_bounds_resident_memory(scaleout_timings):
    """Raw in-flight field data never exceeds the window's slot budget."""
    ds = scaleout_timings["ds"]
    report = scaleout_timings["report"]
    per_step = ds.mesh.num_vertices * 8
    assert report.shm_hwm_bytes <= WINDOW * per_step
    assert report.shm_bytes == STEPS * per_step
    assert report.tasks == STEPS
    assert report.peak_rss_bytes > 0


def test_scaleout_campaign_restores(scaleout_timings):
    reader = CampaignReader(scaleout_timings["h_mp"], "scaleout")
    span = float(np.ptp(scaleout_timings["fields"][0]))
    for step in (0, STEPS - 1):
        state = reader.restore(step, 0)
        err = float(
            np.abs(state.field - scaleout_timings["fields"][step]).max()
        )
        assert err <= LEVELS * REL_TOL * span + 1e-12
