"""Extension bench — progressive isocontour convergence.

Beyond blob detection, the other routine view of dpot is its
equipotential contours. This bench tracks how the contours of the
restored field converge to the full-accuracy contours as deltas are
applied — a visualization-oriented accuracy metric complementing the
RMSE-based auto-termination of §III-E.
"""

import numpy as np
import pytest

from repro.analytics import contour_distance, extract_contour
from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme, ProgressiveReader
from repro.harness import format_table
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

ISO_QUANTILE = 0.75  # contour the large-scale background, which survives
# decimation at every level (blob peaks erode away by ratio 8)


@pytest.fixture(scope="module")
def convergence(tmp_path_factory):
    ds = make_xgc1(scale=0.5)
    h = two_tier_titan(
        tmp_path_factory.mktemp("contour"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-5, "mode": "relative"}
    )
    enc.encode("iso", "dpot", ds.mesh, ds.field, LevelScheme(5))

    isovalue = float(np.quantile(ds.field, ISO_QUANTILE))
    reference = extract_contour(ds.mesh, ds.field, isovalue)

    reader = ProgressiveReader(CanopusDecoder(BPDataset.open("iso", h)), "dpot")
    rows = []
    for state in reader.levels():
        contour = extract_contour(state.mesh, state.plane(), isovalue)
        rows.append(
            {
                "level": state.level,
                "ratio": 2**state.level,
                "segments": contour.num_segments,
                "length": contour.total_length(),
                "drift": contour_distance(contour, reference),
            }
        )
    return ds, reference, rows


def test_contour_convergence_table(convergence, record_result):
    ds, reference, rows = convergence
    record_result(
        "contour_convergence",
        format_table(
            rows,
            title=(
                "Progressive isocontour convergence (dpot, isovalue at "
                f"the {ISO_QUANTILE:.0%} quantile; reference length "
                f"{reference.total_length():.3f})"
            ),
        ),
    )


def test_drift_decreases_with_refinement(convergence):
    _, _, rows = convergence
    drifts = [r["drift"] for r in rows]
    # Convergence from base to full accuracy (levels iterate coarse →
    # fine): the final drift is far below the base drift, and no
    # refinement step makes things substantially worse (tiny plateaus at
    # machine scale are tolerated).
    assert np.isfinite(drifts).all()
    assert drifts[-1] <= drifts[0] / 5
    finite = [d for d in drifts if d > 1e-9]
    assert all(b <= a * 1.5 for a, b in zip(finite, finite[1:]))


def test_full_accuracy_contour_matches(convergence):
    _, reference, rows = convergence
    final = rows[-1]
    assert final["drift"] < 1e-3
    assert final["length"] == pytest.approx(reference.total_length(), rel=0.01)


def test_contour_benchmark(benchmark, convergence):
    ds, _, _ = convergence
    isovalue = float(np.quantile(ds.field, ISO_QUANTILE))
    benchmark(lambda: extract_contour(ds.mesh, ds.field, isovalue))
