"""Figure 5 — Canopus vs. direct multi-level compression.

The paper compresses (a) all levels L0..L(N−1) directly, and (b) the
base plus deltas (Canopus), for total level counts N = 1..4, and plots
the normalized stored size. Canopus wins because deltas are smoother:
"Canopus can further improve the data compression ratio by 14% … for
XGC1 data and up to 62.5% for GenASiS".

This bench prints both curves per dataset and asserts the shape: with
the paper's codec (ZFP-style) Canopus is never worse and strictly
better for N ≥ 2.
"""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_dataset

DATASETS = ["xgc1", "genasis", "cfd"]
SCALE = {"xgc1": 0.4, "genasis": 0.15, "cfd": 1.0}
MAX_LEVELS = 4
REL_TOL = 1e-4


@pytest.fixture(scope="module", params=DATASETS)
def curves(request):
    name = request.param
    ds = make_dataset(name, scale=SCALE[name])
    tol = REL_TOL * float(np.ptp(ds.field))
    codec = get_codec("zfp", tolerance=tol)
    # One deep refactoring provides every prefix N (levels are nested).
    deep = refactor(ds.mesh, ds.field, LevelScheme(MAX_LEVELS))
    rows = []
    for n in range(1, MAX_LEVELS + 1):
        levels = deep.levels[:n]
        original = sum(lvl.nbytes for lvl in levels)
        direct = sum(len(codec.encode(lvl)) for lvl in levels)
        canopus = len(codec.encode(levels[-1])) + sum(
            len(codec.encode(deep.deltas[l])) for l in range(n - 1)
        )
        rows.append(
            {
                "total_levels": n,
                "direct": direct / original,
                "canopus": canopus / original,
                "improvement": 1 - canopus / direct,
            }
        )
    return ds, rows


def test_fig5_canopus_vs_direct(curves, record_result):
    ds, rows = curves
    record_result(
        f"fig5_{ds.name}",
        format_table(
            rows,
            title=(
                f"Fig.5 ({ds.name}/{ds.variable}): normalized size, "
                "direct vs Canopus (ZFP-style, fixed accuracy)"
            ),
        ),
    )
    # N = 1: identical by construction (both store compressed L0).
    assert rows[0]["direct"] == pytest.approx(rows[0]["canopus"])
    # N >= 2: Canopus never loses, and wins somewhere.
    for row in rows[1:]:
        assert row["canopus"] <= row["direct"] * 1.005
    assert max(r["improvement"] for r in rows[1:]) > 0.02


def test_fig5_both_schemes_beat_raw(curves):
    _, rows = curves
    for row in rows:
        assert row["direct"] < 0.5
        assert row["canopus"] < 0.5


def test_fig5_compression_benchmark(benchmark):
    ds = make_dataset("xgc1", scale=0.4)
    tol = REL_TOL * float(np.ptp(ds.field))
    codec = get_codec("zfp", tolerance=tol)
    benchmark(lambda: codec.encode(ds.field))
