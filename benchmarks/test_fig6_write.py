"""Figure 6 — storage-to-compute trend and write-path cost breakdown.

6a: the bytes/s-per-1M-flops trend for leadership systems, 2009–2024
    (reconstructed from public machine specs; strictly decreasing).
6b: per-process time fractions of the Canopus write path — decimation,
    delta calculation + compression, and I/O — measured on the real
    encoder for XGC1's dpot at decimation ratio 2, then projected onto
    the paper's high/medium/low storage-to-compute scenarios (32/128/512
    cores, one storage target).
"""

import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.harness import format_fraction_bar, format_table
from repro.perfmodel import SCENARIOS, model_write_breakdown, storage_to_compute_series
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan


def test_fig6a_trend(record_result):
    series = storage_to_compute_series()
    rows = [{"year": y, "bytes_per_sec_per_1M_flops": v} for y, v in series]
    record_result("fig6a_trend", format_table(rows, title="Fig.6a: storage-to-compute trend"))
    values = [v for _, v in series]
    assert values == sorted(values, reverse=True)
    assert values[0] / values[-1] > 10


@pytest.fixture(scope="module")
def encode_report(tmp_path_factory):
    # Paper: "a time breakdown writing XGC1's dpot variable, using Canopus
    # with a decimation ratio of two to refactor the original 20,694
    # double-precision mesh values".
    ds = make_xgc1(scale=1.0)
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("fig6"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    encoder = CanopusEncoder(
        hierarchy, codec="zfp",
        codec_params={"tolerance": 1e-4, "mode": "relative"},
    )
    report, _ = encoder.encode(
        "fig6", "dpot", ds.mesh, ds.field, LevelScheme(2)
    )
    return report


def test_fig6b_write_breakdown(encode_report, record_result):
    rows = []
    bars = []
    for name in ("high", "medium", "low"):
        breakdown = model_write_breakdown(encode_report, SCENARIOS[name])
        fr = breakdown.fractions()
        rows.append(
            {
                "storage_to_compute": name,
                "cores": SCENARIOS[name].cores,
                "decimation_s": breakdown.decimation_seconds,
                "delta_compress_s": breakdown.delta_compress_seconds,
                "io_s": breakdown.io_seconds,
                "io_fraction": fr["io"],
            }
        )
        bars.append(f"{name:7s} {format_fraction_bar(fr)}")
    record_result(
        "fig6b_write_breakdown",
        format_table(rows, title="Fig.6b: write-path time breakdown")
        + "\n\n"
        + "\n".join(bars),
    )
    # The paper's shape: as storage-to-compute falls, I/O dominates.
    io_fracs = [r["io_fraction"] for r in rows]
    assert io_fracs[0] < io_fracs[1] < io_fracs[2]
    # Compute-phase seconds are scenario-invariant (weak scaling).
    assert rows[0]["decimation_s"] == rows[2]["decimation_s"]


def test_fig6b_encode_benchmark(benchmark, tmp_path):
    ds = make_xgc1(scale=0.2)
    hierarchy = two_tier_titan(
        tmp_path, fast_capacity=32 << 20, slow_capacity=1 << 34
    )
    encoder = CanopusEncoder(
        hierarchy, codec="zfp",
        codec_params={"tolerance": 1e-4, "mode": "relative"},
    )
    counter = iter(range(10_000))

    def encode_once():
        encoder.encode(
            f"fig6bench{next(counter)}", "dpot", ds.mesh, ds.field,
            LevelScheme(2),
        )

    benchmark.pedantic(encode_once, rounds=3, iterations=1)
