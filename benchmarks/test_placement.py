"""Cost-based placement vs the seed fastest-first walk (skewed access).

The seed placed products with the paper's §III-D walk: fastest tier
first, bypass when full. Under a *skewed* read workload that is the
wrong bet — whatever was encoded first hogs the fast tier, and the
variable analysts actually hammer is served from Lustre forever.

This benchmark encodes a Fig.-9-scale XGC1 campaign with a cold
variable first (the walk fills tmpfs with it) and a hot variable second
(bypassed to Lustre), then replays a skewed read trace both ways:

* **seed walk** — static placement, every hot restore reads Lustre;
* **cost-based** — the :class:`~repro.storage.placement.PlacementEngine`
  re-plans placement from the observed
  :class:`~repro.storage.policy.AccessTracker` statistics
  (``TierManager.replan`` — the elastic re-tiering the paper defers to
  future work) and the same trace is replayed against the new layout.

Asserted: the cost-based layout serves the trace in strictly less
simulated I/O time (threshold below), restores stay bit-identical, and
the structured result lands in ``benchmarks/results/BENCH_placement.json``
(uploaded as a CI artifact).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.harness import format_table, json_report
from repro.harness.experiment import stack_planes
from repro.harness.report import write_json_report
from repro.io import BPDataset
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan
from repro.storage.policy import TierManager

from pipeline_common import RESULTS_DIR

SCALE = 0.5  # Fig. 9's XGC1 scale
PLANES = 2
LEVELS = 3
CHUNKS = 4
REL_TOL = 1e-4
HOT_SESSIONS = 5  # hot variable read 5x as often as the cold one
MAX_COST_FRACTION = 0.7  # cost-based trace must cost < 70% of the walk's


def _restore(hierarchy, name):
    ds = BPDataset.open(name, hierarchy, cache_bytes=0)
    return CanopusDecoder(ds).restore_to("dpot", 0, pipeline=False).field


def _trace_seconds(hierarchy):
    """Simulated I/O seconds for the skewed trace; returns (s, fields)."""
    clock = hierarchy.clock
    before = clock.elapsed
    fields = {}
    for _ in range(HOT_SESSIONS):
        fields["hot"] = _restore(hierarchy, "hot")
    fields["cold"] = _restore(hierarchy, "cold")
    return clock.elapsed - before, fields


@pytest.fixture(scope="module")
def placement_run(tmp_path_factory):
    src = make_xgc1(scale=SCALE, seed=11)
    base = stack_planes(src, PLANES)
    rng = np.random.default_rng(11)
    cold_field = base
    hot_field = 0.7 * base + 0.05 * rng.standard_normal(base.shape)

    def encoder_for(h):
        return CanopusEncoder(
            h, codec="zfp",
            codec_params={"tolerance": REL_TOL, "mode": "relative"},
            chunks=CHUNKS,
        )

    # Calibrate: how many compressed bytes does the cold variable take?
    probe = two_tier_titan(
        tmp_path_factory.mktemp("probe"), fast_capacity=1 << 34,
        slow_capacity=1 << 38,
    )
    report, _ = encoder_for(probe).encode(
        "probe", "cold", src.mesh, cold_field, LevelScheme(LEVELS)
    )
    cold_bytes = sum(report.compressed_bytes.values())

    # Fast tier sized so the cold campaign (encoded first) fills it and
    # the walk bypasses the hot campaign down to Lustre. The campaigns
    # are separate datasets so each has its own subfiles — the unit the
    # migration machinery moves between tiers.
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("placement"),
        fast_capacity=int(1.15 * cold_bytes) + (64 << 10),
        slow_capacity=1 << 38,
    )
    enc = encoder_for(hierarchy)
    enc.encode("cold", "dpot", src.mesh, cold_field, LevelScheme(LEVELS))
    enc.encode("hot", "dpot", src.mesh, hot_field, LevelScheme(LEVELS))

    ds = BPDataset.open("hot", hierarchy)
    hot_subfiles = sorted({ds.inq(k).subfile for k in ds.keys()})
    walk_tiers = {s: hierarchy.locate(s).name for s in hot_subfiles}

    # --- seed walk: static placement, skewed trace ----------------------
    walk_seconds, walk_fields = _trace_seconds(hierarchy)

    # --- cost-based: replan from observed reads, replay the trace -------
    mgr = TierManager(hierarchy, high_water=0.9, low_water=0.6)
    now = hierarchy.clock.elapsed
    for sub in hot_subfiles:
        for _ in range(HOT_SESSIONS):
            mgr.tracker.note(sub, now)
    migration_before = hierarchy.clock.elapsed
    moves = mgr.replan()
    migration_seconds = hierarchy.clock.elapsed - migration_before
    cost_seconds, cost_fields = _trace_seconds(hierarchy)
    cost_tiers = {s: hierarchy.locate(s).name for s in hot_subfiles}

    return {
        "walk_seconds": walk_seconds,
        "cost_seconds": cost_seconds,
        "migration_seconds": migration_seconds,
        "moves": moves,
        "walk_tiers": walk_tiers,
        "cost_tiers": cost_tiers,
        "walk_fields": walk_fields,
        "cost_fields": cost_fields,
        "plan_est_seconds": mgr.engine.plan_replacement(
            mgr.tracker
        ).est_read_seconds,
        "vertices": src.mesh.num_vertices,
        "cold_bytes": cold_bytes,
    }


def test_walk_starves_the_hot_variable(placement_run):
    # Precondition for the whole comparison: the seed walk left the hot
    # variable on the slow tier because cold data got there first.
    assert "lustre" in set(placement_run["walk_tiers"].values())


def test_replan_promotes_hot_data(placement_run):
    moves = placement_run["moves"]
    assert moves, "replan must migrate something under skewed access"
    promoted = {m[0] for m in moves if m[2] == "tmpfs"}
    assert promoted & set(placement_run["cost_tiers"]), (
        "at least one hot subfile must reach tmpfs"
    )
    assert "tmpfs" in set(placement_run["cost_tiers"].values())


def test_restores_bit_identical_across_layouts(placement_run):
    for var in ("hot", "cold"):
        np.testing.assert_array_equal(
            placement_run["walk_fields"][var],
            placement_run["cost_fields"][var],
        )


def test_cost_beats_walk_and_report(placement_run, record_result):
    walk_s = placement_run["walk_seconds"]
    cost_s = placement_run["cost_seconds"]
    rows = [
        {
            "policy": "seed walk (fastest-first, static)",
            "sim_read_s": f"{walk_s:.4f}",
            "hot_tier": ",".join(
                sorted(set(placement_run["walk_tiers"].values()))
            ),
        },
        {
            "policy": "cost-based (replan from access stats)",
            "sim_read_s": f"{cost_s:.4f}",
            "hot_tier": ",".join(
                sorted(set(placement_run["cost_tiers"].values()))
            ),
        },
    ]
    record_result(
        "placement_skewed",
        format_table(
            rows,
            title=(
                f"skewed trace ({HOT_SESSIONS}:1 hot:cold), xgc1 scale "
                f"{SCALE} ({placement_run['vertices']} vertices, "
                f"{PLANES} planes) — cost/walk = {cost_s / walk_s:.2f}"
            ),
        ),
    )
    report = json_report(
        "placement_skewed",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "planes": PLANES,
            "vertices": placement_run["vertices"],
            "levels": LEVELS,
            "chunks": CHUNKS,
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
            "hot_sessions": HOT_SESSIONS,
            "cold_compressed_bytes": placement_run["cold_bytes"],
        },
        metrics={
            "walk_seconds": walk_s,
            "cost_seconds": cost_s,
            "cost_over_walk": cost_s / walk_s,
            "max_cost_fraction": MAX_COST_FRACTION,
            "migration_seconds": placement_run["migration_seconds"],
            "migrations": len(placement_run["moves"]),
            "plan_est_read_seconds": placement_run["plan_est_seconds"],
            "bit_identical": True,  # asserted separately
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_placement.json", report)

    assert cost_s < MAX_COST_FRACTION * walk_s, (
        f"cost-based trace {cost_s:.4f}s not under "
        f"{MAX_COST_FRACTION:.0%} of walk {walk_s:.4f}s"
    )
