"""Figure 4 — data refactoring: levels, meshes, and delta smoothness.

The paper's Fig. 4 shows, for XGC1/GenASiS/CFD, the original data and
mesh, the 4× decimated level, and the two deltas — visually
demonstrating that "the delta calculated between adjacent levels
exhibits higher smoothness than the intermediate decimation results".
This bench reproduces the figure numerically: per-signal smoothness
statistics plus per-level mesh stats, and asserts the smoothness
ordering that motivates delta storage.
"""

import pytest

from repro.compress.stats import smoothness
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.mesh.metrics import mesh_stats
from repro.simulations import make_dataset

DATASETS = ["xgc1", "genasis", "cfd"]
SCALE = {"xgc1": 0.4, "genasis": 0.15, "cfd": 1.0}


@pytest.fixture(scope="module", params=DATASETS)
def refactored(request):
    ds = make_dataset(request.param, scale=SCALE[request.param])
    result = refactor(ds.mesh, ds.field, LevelScheme(3))
    return ds, result


def signal_rows(result):
    rows = []
    for label, sig in [
        ("L0", result.levels[0]),
        ("L1", result.levels[1]),
        ("L2 (base)", result.levels[2]),
        ("delta1-2", result.deltas[1]),
        ("delta0-1", result.deltas[0]),
    ]:
        s = smoothness(sig)
        rows.append(
            {
                "signal": label,
                "n": s.n,
                "std": s.std,
                "range": s.value_range,
                "total_variation": s.total_variation,
            }
        )
    return rows


def test_fig4_smoothness_table(refactored, record_result):
    ds, result = refactored
    rows = signal_rows(result)
    mesh_rows = [
        {"level": lvl, **mesh_stats(m).as_dict()}
        for lvl, m in enumerate(result.meshes)
    ]
    record_result(
        f"fig4_{ds.name}",
        format_table(
            rows, title=f"Fig.4 ({ds.name}/{ds.variable}): signal smoothness"
        )
        + "\n\n"
        + format_table(
            mesh_rows,
            columns=[
                "level", "num_vertices", "num_triangles", "total_area",
                "mean_edge_length",
            ],
            title="mesh levels",
        ),
    )
    by_name = {r["signal"]: r for r in rows}
    # The paper's observation: delta^{l-(l+1)} is smoother than L^l.
    for lvl in (0, 1):
        delta = by_name[f"delta{lvl}-{lvl + 1}"]
        level = by_name[f"L{lvl}"] if lvl == 0 else by_name["L1"]
        assert delta["std"] < level["std"]
        assert delta["range"] < level["range"]


def test_fig4_mesh_progression(refactored):
    ds, result = refactored
    # d_l = 2^l within tolerance, and every level is a valid mesh.
    n0 = result.meshes[0].num_vertices
    for lvl, mesh in enumerate(result.meshes):
        assert n0 / mesh.num_vertices == pytest.approx(2.0**lvl, rel=0.05)
        assert (mesh.triangle_areas() > 0).all()


def test_fig4_refactor_benchmark(benchmark):
    ds = make_dataset("xgc1", scale=0.15)
    benchmark.pedantic(
        lambda: refactor(ds.mesh, ds.field, LevelScheme(3)),
        rounds=3,
        iterations=1,
    )
