"""Figure 10 — GenASiS pipeline phase times and full-accuracy restoration.

Same protocol as Fig. 9 without the blob-detection stage (the paper
plots I/O / decompression / restoration only for GenASiS), over
decimation ratios {2, 4, 8, 16, 32}.
"""

import pytest

from pipeline_common import (
    assert_pipeline_shape,
    record_bench_json,
    run_pipeline_sweep,
)

RATIOS = [2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    return run_pipeline_sweep(
        "genasis",
        tmp_path_factory.mktemp("fig10"),
        scale=0.15,
        planes=32,
        ratios=RATIOS,
    )


def test_fig10_tables(sweep, record_result):
    record_result("fig10_genasis_pipeline", "Fig.10 " + sweep.tables())
    record_bench_json("fig10_genasis", sweep.to_json())


def test_fig10_pipeline_shape(sweep):
    assert_pipeline_shape(sweep)


def test_fig10_restoration_io_grows_with_ratio_depth(sweep):
    """Restoring L0 from a deeper base reads more delta products, so the
    full-restoration I/O is non-decreasing in the number of levels."""
    io_b = [r["io_s"] for r in sweep.full_restore_rows]
    assert io_b[0] <= io_b[-1] * 1.5  # same order of magnitude
    assert all(io > 0 for io in io_b)


def test_fig10_decimation_benchmark(benchmark):
    from repro.mesh import decimate
    from repro.simulations import make_genasis

    ds = make_genasis(scale=0.05)
    benchmark.pedantic(
        lambda: decimate(ds.mesh, ds.field, ratio=2), rounds=3, iterations=1
    )
