"""Write-path speedup: batched kernel + plan replay + parallel compress.

The seed write path re-ran Algorithm 1's serial heap loop for every
timestep of a campaign and compressed each product one after another.
This benchmark encodes a Fig.-4-scale XGC1 campaign both ways:

* **seed path** — per step: direct serial refactoring (decimate with
  fields, no plan reuse) followed by serial codec encodes;
* **fast path** — :class:`~repro.core.campaign.CampaignWriter` with the
  batched kernel, the process-wide plan cache, and a thread pool
  overlapping delta computation and codec encodes.

The structured result lands in ``benchmarks/results/BENCH_refactor.json``
(uploaded as a CI artifact). Asserted: ≥3× wall-time speedup, plan
replay bit-identity against the direct path, and restoration accuracy
from the fast-path campaign.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.compress import get_codec
from repro.core import (
    CampaignReader,
    CampaignWriter,
    LevelScheme,
    build_plan,
    get_plan_cache,
    refactor,
)
from repro.harness import format_table, json_report
from repro.harness.report import write_json_report
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import RESULTS_DIR

SCALE = 0.4  # Fig. 4's XGC1 scale
LEVELS = 3
STEPS = 4
WORKERS = 4
REL_TOL = 1e-4
MIN_SPEEDUP = 3.0


def _timestep_fields(ds, steps: int) -> list[np.ndarray]:
    """A drifting-phase campaign: same mesh, step-dependent values."""
    x, y = ds.mesh.vertices[:, 0], ds.mesh.vertices[:, 1]
    return [
        ds.field * (1.0 + 0.05 * t) + 0.1 * np.sin(3 * x + 0.4 * t) * y
        for t in range(steps)
    ]


@pytest.fixture(scope="module")
def campaign_timings(tmp_path_factory):
    ds = make_xgc1(scale=SCALE, seed=7)
    scheme = LevelScheme(LEVELS)
    fields = _timestep_fields(ds, STEPS)
    codec_params = {"tolerance": REL_TOL, "mode": "relative"}

    # --- seed path: serial decimation per step + serial compress ----------
    codec = get_codec("zfp", tolerance=REL_TOL * float(np.ptp(fields[0])))
    t0 = time.perf_counter()
    seed_results = []
    for data in fields:
        result = refactor(ds.mesh, data, scheme, use_plan_cache=False)
        blobs = [codec.encode(result.base_field.ravel())]
        blobs += [codec.encode(d.ravel()) for d in result.deltas]
        seed_results.append((result, blobs))
    seed_seconds = time.perf_counter() - t0

    # --- fast path: batched plan + replay + parallel delta/compress -------
    get_plan_cache().clear()
    hierarchy = two_tier_titan(
        tmp_path_factory.mktemp("refactor-speedup"),
        fast_capacity=256 << 20, slow_capacity=1 << 38,
    )
    t0 = time.perf_counter()
    writer = CampaignWriter(
        hierarchy, "speedup", "dpot", ds.mesh, scheme,
        codec="zfp", codec_params=codec_params,
        method="batched", workers=WORKERS,
    )
    for step, data in enumerate(fields):
        writer.write_step(step, data)
    writer.close()
    fast_seconds = time.perf_counter() - t0

    return {
        "ds": ds,
        "scheme": scheme,
        "fields": fields,
        "hierarchy": hierarchy,
        "seed_seconds": seed_seconds,
        "fast_seconds": fast_seconds,
        "seed_results": seed_results,
    }


def test_speedup_and_report(campaign_timings, record_result):
    seed_s = campaign_timings["seed_seconds"]
    fast_s = campaign_timings["fast_seconds"]
    speedup = seed_s / fast_s

    ds = campaign_timings["ds"]
    rows = [
        {
            "path": "seed (serial decimate/step, serial compress)",
            "steps": STEPS,
            "wall_s": f"{seed_s:.3f}",
            "per_step_s": f"{seed_s / STEPS:.3f}",
        },
        {
            "path": f"fast (batched plan + replay, {WORKERS} workers)",
            "steps": STEPS,
            "wall_s": f"{fast_s:.3f}",
            "per_step_s": f"{fast_s / STEPS:.3f}",
        },
    ]
    record_result(
        "refactor_speedup",
        format_table(
            rows,
            title=(
                f"campaign encode wall time, xgc1 scale {SCALE} "
                f"({ds.mesh.num_vertices} vertices, {LEVELS} levels) — "
                f"speedup {speedup:.1f}x"
            ),
        ),
    )

    report = json_report(
        "refactor_speedup",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "vertices": ds.mesh.num_vertices,
            "levels": LEVELS,
            "steps": STEPS,
            "workers": WORKERS,
            "codec": "zfp",
            "rel_tolerance": REL_TOL,
        },
        metrics={
            "seed_seconds": seed_s,
            "fast_seconds": fast_s,
            "speedup": speedup,
            "min_speedup_required": MIN_SPEEDUP,
            "replay_bit_identical": True,  # asserted below
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_refactor.json", report)

    assert speedup >= MIN_SPEEDUP, (
        f"fast path {fast_s:.3f}s vs seed {seed_s:.3f}s — "
        f"only {speedup:.2f}x"
    )


def test_plan_replay_bit_identical_to_seed_path(campaign_timings):
    """Replaying the serial plan reproduces the seed path's levels and
    deltas exactly (bit-for-bit), so caching changes no output."""
    ds = campaign_timings["ds"]
    scheme = campaign_timings["scheme"]
    plan = build_plan(ds.mesh, scheme, method="serial")
    for data, (seed_result, _) in zip(
        campaign_timings["fields"], campaign_timings["seed_results"]
    ):
        levels, deltas = plan.refactor_fields(data, workers=WORKERS)
        for got, want in zip(levels, seed_result.levels):
            assert np.array_equal(got, want)
        for got, want in zip(deltas, seed_result.deltas):
            assert np.array_equal(got, want)


def test_fast_campaign_restores_within_tolerance(campaign_timings):
    reader = CampaignReader(campaign_timings["hierarchy"], "speedup")
    span = float(np.ptp(campaign_timings["fields"][0]))
    for step, data in enumerate(campaign_timings["fields"]):
        state = reader.restore(step, 0)
        err = float(np.abs(state.field - data).max())
        assert err <= LEVELS * REL_TOL * span + 1e-12


def test_batched_kernel_benchmark(benchmark):
    from repro.mesh import decimate

    ds = make_xgc1(scale=0.15)
    benchmark(lambda: decimate(ds.mesh, None, ratio=2.0, method="batched"))
