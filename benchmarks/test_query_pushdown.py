"""Tentpole bench — accuracy-aware retrieval planner + summary pushdown.

Paper §III-E: low-accuracy previews guide "focused data retrieval,
e.g., reading smaller subsets of high accuracy data". This bench puts a
number on the planner end of that claim for a fig9-scale XGC1 campaign:

* a mix of tolerance + region queries is answered twice — once through
  :class:`QueryPlanner` (certified stopping level from persisted
  per-chunk summaries, bbox pruning, one batched prefetch) and once
  naively (full unfiltered level-0 restore per query);
* pushdown statistics run entirely against catalog summaries, moving
  zero payload bytes;
* exact (level-0, unfiltered) queries stay bit-identical through the
  planner, and every tolerance query lands within its tolerance.

Emits ``results/BENCH_query.json`` (gated by ``check_regression.py``)
plus the ``query_stats_pruning`` table (moved here from the focused
retrieval bench, which kept the decoder-level ROI measurements).
"""

import time

import numpy as np
import pytest

from repro.core import CanopusEncoder, LevelScheme
from repro.core.decode_engine import DecodeEngine
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.harness import format_table, json_report
from repro.harness.report import write_json_report
from repro.io import BPDataset, QueryEngine
from repro.query import QueryPlanner, blob_query, stats_query
from repro.simulations import make_xgc1
from repro.storage import two_tier_titan

from pipeline_common import RESULTS_DIR

CHUNKS = 36
SCALE = 0.5
LEVELS = 3
#: The paper's headline for this mechanism: the planner must at least
#: halve both simulated read time and fetched bytes on the query mix.
MIN_SAVINGS = 2.0


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    ds = make_xgc1(scale=SCALE)
    h = two_tier_titan(
        tmp_path_factory.mktemp("pushdown"), fast_capacity=32 << 20,
        slow_capacity=1 << 34,
    )
    enc = CanopusEncoder(
        h, codec="zfp", codec_params={"tolerance": 1e-4, "mode": "relative"},
        chunks=CHUNKS,
    )
    enc.encode("q", "dpot", ds.mesh, ds.field, LevelScheme(LEVELS))
    get_restored_cache().clear()
    get_geometry_cache().clear()
    yield ds, h
    get_restored_cache().clear()
    get_geometry_cache().clear()


def _fresh_planner(h):
    """Cold engine: no restored cache, fresh range cache."""
    dataset = BPDataset.open("q", h)
    return QueryPlanner(DecodeEngine(dataset, use_restored_cache=False))


def _measure(h, fn):
    """Run ``fn`` and return (result, sim_read_seconds, read_bytes, wall)."""
    sim0 = h.clock.total(op="read")
    bytes0 = h.clock.bytes_moved(op="read")
    wall0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - wall0
    return (
        result,
        h.clock.total(op="read") - sim0,
        h.clock.bytes_moved(op="read") - bytes0,
        wall,
    )


def test_query_pushdown_benchmark(setup, record_result):
    ds, h = setup
    center = ds.mesh.vertices[int(np.argmax(ds.field))]

    # Warm shared geometry once, unmeasured: both sides reuse it, and
    # the bench is about per-query payload bytes, not the mesh chain.
    warm = _fresh_planner(h)
    warm.engine.decoder.prefetch_geometry("dpot")
    base_level = LEVELS - 1

    def certified_rms(region=None):
        # An unreachable tolerance surveys every level, so the plan's
        # level_rms is the certified (region-filtered) RMS ladder.
        return warm.plan_restore(
            "dpot", tolerance=1e-12, region=region
        ).level_rms

    # Tolerances derived from the campaign's own certified RMS ladder so
    # the mix stays satisfiable if the simulation changes: "coarse"
    # stops one level early, "fine" runs to level 0 — each relative to
    # its query's region, where the delta energy actually lives.
    roi_fine = (center - 0.15, center + 0.15)
    roi_coarse = (center - 0.3, center + 0.3)
    # A fig9-style analysis session: accuracy-bounded restores (full
    # domain and focused), aggregate statistics, and blob screening. A
    # system without summaries answers every one of these with a full
    # level-0 restore; the planner answers the restores from certified
    # pruned plans and the analytics from summaries alone.
    mix = [
        ("coarse tol, full domain", "restore", dict(
            tolerance=certified_rms()[base_level - 1] * 1.01)),
        ("fine tol, ROI 0.15", "restore", dict(
            tolerance=certified_rms(roi_fine)[0] * 1.01, region=roi_fine)),
        ("coarse tol, ROI 0.3", "restore", dict(
            tolerance=certified_rms(roi_coarse)[base_level - 1] * 1.01,
            region=roi_coarse)),
        ("stats, full domain", "stats", {}),
        ("stats, ROI 0.15", "stats", dict(region=roi_fine)),
        ("blobs, unreachable threshold", "blobs", dict(
            threshold=float(ds.field.max()) * 2 + 1)),
    ]

    rows = []
    totals = {"planner": [0.0, 0, 0.0], "naive": [0.0, 0, 0.0]}
    for name, kind, params in mix:
        planner = _fresh_planner(h)
        if kind == "restore":
            (state, plan), psim, pbytes, pwall = _measure(
                h, lambda: planner.restore("dpot", **params)
            )
            assert plan.complete, f"{name}: tolerance target not certified"
            tol = params["tolerance"]
            assert state.last_delta_rms <= tol, (
                f"{name}: achieved rms {state.last_delta_rms} > {tol}"
            )
            detail = f"level {plan.target_level}, {plan.pruned_chunks} pruned"
        elif kind == "stats":
            result, psim, pbytes, pwall = _measure(
                h, lambda: stats_query(planner.engine, "dpot", **params)
            )
            assert result["pushdown"] and result["restores"] == 0
            assert pbytes == 0
            if "region" not in params:
                assert result["stats"]["vmax"] == pytest.approx(
                    float(ds.field.max())
                )
                assert result["stats"]["count"] == ds.field.size
            detail = "pushdown, 0 restores"
        else:
            result, psim, pbytes, pwall = _measure(
                h, lambda: blob_query(planner.engine, "dpot", **params)
            )
            assert result["count"] == 0 and result["restores"] == 0
            assert result["pruned_chunks"] == CHUNKS
            assert pbytes == 0
            detail = "pushdown, 0 restores"

        naive = _fresh_planner(h)
        _, nsim, nbytes, nwall = _measure(
            h, lambda: naive.engine.restore("dpot", 0)
        )

        for acc, vals in (
            ("planner", (psim, pbytes, pwall)),
            ("naive", (nsim, nbytes, nwall)),
        ):
            totals[acc][0] += vals[0]
            totals[acc][1] += vals[1]
            totals[acc][2] += vals[2]
        rows.append({
            "query": name,
            "kind": kind,
            "outcome": detail,
            "planner_bytes": pbytes,
            "naive_bytes": nbytes,
            "planner_sim_ms": psim * 1e3,
            "naive_sim_ms": nsim * 1e3,
        })

    # Exact queries stay bit-identical through the planner.
    exact = _fresh_planner(h)
    exact_state, exact_plan = exact.restore("dpot", level=0)
    reference = _fresh_planner(h).engine.restore("dpot", 0)
    assert np.array_equal(exact_state.field, reference.field)
    assert exact_plan.skipped_bytes == 0

    sim_savings = totals["naive"][0] / totals["planner"][0]
    bytes_savings = totals["naive"][1] / totals["planner"][1]
    record_result(
        "query_pushdown",
        format_table(
            rows,
            title=(
                f"planner vs naive full restore, xgc1 scale {SCALE}, "
                f"{CHUNKS} chunks — {sim_savings:.1f}x sim-read, "
                f"{bytes_savings:.1f}x bytes"
            ),
        ),
    )

    report = json_report(
        "query_pushdown",
        rows,
        meta={
            "dataset": "xgc1",
            "scale": SCALE,
            "chunks": CHUNKS,
            "levels": LEVELS,
            "codec": "zfp",
            "rel_tolerance": 1e-4,
            "min_savings_required": MIN_SAVINGS,
        },
        metrics={
            "planner": {
                "mix_sim_read_seconds": totals["planner"][0],
                "mix_bytes": totals["planner"][1],
                "mix_wall_seconds": totals["planner"][2],
            },
            "naive": {
                "mix_sim_read_seconds": totals["naive"][0],
                "mix_bytes": totals["naive"][1],
                "mix_wall_seconds": totals["naive"][2],
            },
            "sim_read_savings": sim_savings,
            "bytes_savings": bytes_savings,
            "exact_bit_identical": True,
        },
    )
    write_json_report(RESULTS_DIR / "BENCH_query.json", report)

    assert sim_savings >= MIN_SAVINGS, (
        f"planner saved only {sim_savings:.2f}x sim-read time"
    )
    assert bytes_savings >= MIN_SAVINGS, (
        f"planner saved only {bytes_savings:.2f}x fetched bytes"
    )


def test_statistics_pruning_report(setup, record_result):
    _, h = setup
    q = QueryEngine(BPDataset.open("q", h))
    rows = []
    for magnitude in (0.0, 1e-3, 1e-2, 1e-1):
        kept = q.candidates_significant(magnitude, kind="delta")
        rows.append({"min_significance": magnitude, "chunks_kept": len(kept)})
    record_result(
        "query_stats_pruning",
        format_table(rows, title="Delta chunks surviving significance pruning"),
    )
    counts = [r["chunks_kept"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] < counts[0]


def test_planner_benchmark(benchmark, setup):
    _, h = setup
    planner = _fresh_planner(h)
    benchmark(lambda: planner.plan_restore("dpot", tolerance=1e-2))
