"""Ablation — the floating-point compressor stage (paper §III-C3).

"As of 2016, Canopus has integrated ZFP … We are in the process of
integrating other compression libraries such as SZ and FPC." This
ablation runs the codec registry over the refactored products: the
ZFP-/SZ-style error-bounded codecs on the deltas, plus the lossless
FPC-style and deflate baselines, reporting normalized sizes and
throughput.
"""

import numpy as np
import pytest

from repro.compress import compress_with_stats, get_codec
from repro.core import LevelScheme, refactor
from repro.harness import format_table
from repro.simulations import make_xgc1

REL_TOL = 1e-4


@pytest.fixture(scope="module")
def products():
    ds = make_xgc1(scale=0.4)
    result = refactor(ds.mesh, ds.field, LevelScheme(3))
    tol = REL_TOL * float(np.ptp(ds.field))
    return ds, result, tol


def codec_list(tol):
    return [
        ("zfp", {"tolerance": tol}),
        ("sz", {"tolerance": tol}),
        ("fpc", {}),
        ("deflate", {}),
    ]


@pytest.fixture(scope="module")
def comparison(products):
    ds, result, tol = products
    rows = []
    for name, params in codec_list(tol):
        codec = get_codec(name, **params)
        base = compress_with_stats(codec, result.base_field)
        deltas = [compress_with_stats(codec, d) for d in result.deltas]
        total_in = base.original_bytes + sum(d.original_bytes for d in deltas)
        total_out = base.compressed_bytes + sum(
            d.compressed_bytes for d in deltas
        )
        rows.append(
            {
                "codec": name,
                "lossless": codec.lossless,
                "normalized_size": total_out / total_in,
                "max_err": max(
                    [base.max_abs_error] + [d.max_abs_error for d in deltas]
                ),
                "encode_MBps": total_in
                / 1e6
                / (base.encode_seconds + sum(d.encode_seconds for d in deltas)),
            }
        )
    return rows


def test_compressor_ablation_table(comparison, record_result):
    record_result(
        "ablation_compressor",
        format_table(
            comparison, title="Ablation: compressor stage on Canopus products"
        ),
    )


def test_lossy_beats_lossless_on_ratio(comparison):
    """The paper's premise: lossless tops out under 2x; error-bounded
    codecs reach far higher ratios."""
    by = {r["codec"]: r for r in comparison}
    for lossy in ("zfp", "sz"):
        assert by[lossy]["normalized_size"] < 0.5
    for lossless in ("fpc", "deflate"):
        assert by[lossless]["normalized_size"] > 0.5  # <2x ratio


def test_error_bounds_hold(comparison, products):
    _, _, tol = products
    by = {r["codec"]: r for r in comparison}
    assert by["zfp"]["max_err"] <= tol + 1e-15
    assert by["sz"]["max_err"] <= tol + 1e-15
    assert by["fpc"]["max_err"] == 0.0
    assert by["deflate"]["max_err"] == 0.0


def test_compressor_benchmark(benchmark, products):
    _, result, tol = products
    codec = get_codec("sz", tolerance=tol)
    benchmark(lambda: codec.encode(result.deltas[0]))
